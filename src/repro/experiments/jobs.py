"""Execution-layer jobs for the training-bound experiments.

Table I trains one detector pipeline per SSD width; Table II/IV plan
one GAP8 deployment per width; Fig. 3 flies one exploration mission per
policy. Each of those units is a deterministic, self-contained function
of plain data -- so each becomes a :class:`~repro.exec.JobSpec` that
the shared :class:`~repro.exec.Executor` can fan out over worker
processes and memoize in the persistent result cache. The experiment
modules (:mod:`~repro.experiments.table1` etc.) submit these jobs and
rebuild their rich result objects from the plain payloads.

Because jobs are keyed by content, results flow *between* experiments
for free: Table IV's deployment-plan job for a width is byte-for-byte
the job Table II already ran, so ``table4`` reuses ``table2``'s cached
plan (and vice versa) instead of re-tracing the network.

Payload encoding: numpy arrays travel as ``{"dtype", "shape", "data"}``
dicts with base64-encoded bytes (:func:`encode_array`), which is exact
-- no float formatting round-off -- and JSON-safe for the cache.
"""

from __future__ import annotations

import base64
from typing import Dict, List, Optional

import numpy as np

from repro.datasets import (
    make_himax_like,
    make_openimages_like,
    rebalance_with_translation,
)
from repro.datasets.base import DetectionDataset
from repro import schemas
from repro.errors import ExecError
from repro.evaluation import evaluate_map
from repro.exec import JobSpec
from repro.experiments.config import ExperimentScale
from repro.geometry.vec import Vec2
from repro.hw.cost import CostReport, LayerCost
from repro.hw.deploy import DeploymentPlan, GAPFlowDeployer
from repro.hw.gap8 import PerformanceEstimate
from repro.hw.memory import LayerTiling, MemoryReport
from repro.mapping.occupancy import OccupancyGrid
from repro.mission.explorer import ExplorationMission
from repro.policies import PolicyConfig, make_policy
from repro.quantization import QATWeightQuantizer, quantize_detector
from repro.vision import SSDDetector, full_scale_spec, tiny_spec
from repro.vision.training import (
    Trainer,
    paper_finetune_config,
    paper_pretrain_config,
)
from repro.world import paper_room

#: Code-version token of every experiment job; bump when a job callable
#: below changes semantics so stale cached results are invalidated.
EXPERIMENT_JOB_VERSION = schemas.EXPERIMENT_JOB_VERSION

#: Input resolution of the tiny experiment detectors, (H, W).
TINY_HW = (48, 64)

#: Calibration batch size for int8 conversion (first N fine-tune images).
CALIBRATION_IMAGES = 16


# -- payload codecs --------------------------------------------------------


def encode_array(arr: np.ndarray) -> dict:
    """Exact, JSON-safe encoding of a numpy array."""
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_array(data: dict) -> np.ndarray:
    """Inverse of :func:`encode_array`."""
    try:
        raw = base64.b64decode(data["data"].encode("ascii"))
        arr = np.frombuffer(raw, dtype=np.dtype(data["dtype"]))
        return arr.reshape(tuple(data["shape"])).copy()
    except (KeyError, TypeError, ValueError) as exc:
        raise ExecError(f"malformed array payload: {exc}") from exc


def encode_state(state: Dict[str, np.ndarray]) -> dict:
    """Encode a module state dict (:meth:`repro.nn.module.Module.state_dict`)."""
    return {name: encode_array(arr) for name, arr in state.items()}


def decode_state(data: dict) -> Dict[str, np.ndarray]:
    """Inverse of :func:`encode_state`."""
    return {name: decode_array(arr) for name, arr in data.items()}


def plan_to_dict(plan: DeploymentPlan) -> dict:
    """Plain-data form of a :class:`~repro.hw.deploy.DeploymentPlan`."""
    return {
        "cost": {
            "name": plan.cost.name,
            "input_hw": list(plan.cost.input_hw),
            "layers": [
                {
                    "name": l.name,
                    "kind": l.kind,
                    "macs": l.macs,
                    "params": l.params,
                    "in_shape": list(l.in_shape),
                    "out_shape": list(l.out_shape),
                }
                for l in plan.cost.layers
            ],
        },
        "memory": {
            "name": plan.memory.name,
            "weight_bytes": plan.memory.weight_bytes,
            "weights_location": plan.memory.weights_location,
            "peak_activation_bytes": plan.memory.peak_activation_bytes,
            "tilings": [
                {
                    "name": t.name,
                    "working_set_bytes": t.working_set_bytes,
                    "n_tiles": t.n_tiles,
                }
                for t in plan.memory.tilings
            ],
        },
        "performance": {
            "name": plan.performance.name,
            "macs": plan.performance.macs,
            "cycles": plan.performance.cycles,
            "efficiency_mac_per_cycle": plan.performance.efficiency_mac_per_cycle,
            "latency_s": plan.performance.latency_s,
            "fps": plan.performance.fps,
        },
    }


def plan_from_dict(data: dict) -> DeploymentPlan:
    """Inverse of :func:`plan_to_dict`."""
    cost = data["cost"]
    memory = data["memory"]
    return DeploymentPlan(
        cost=CostReport(
            name=cost["name"],
            input_hw=tuple(cost["input_hw"]),
            layers=[
                LayerCost(
                    name=l["name"],
                    kind=l["kind"],
                    macs=l["macs"],
                    params=l["params"],
                    in_shape=tuple(l["in_shape"]),
                    out_shape=tuple(l["out_shape"]),
                )
                for l in cost["layers"]
            ],
        ),
        memory=MemoryReport(
            name=memory["name"],
            weight_bytes=memory["weight_bytes"],
            weights_location=memory["weights_location"],
            peak_activation_bytes=memory["peak_activation_bytes"],
            tilings=[
                LayerTiling(
                    name=t["name"],
                    working_set_bytes=t["working_set_bytes"],
                    n_tiles=t["n_tiles"],
                )
                for t in memory["tilings"]
            ],
        ),
        performance=PerformanceEstimate(**data["performance"]),
    )


# -- shared helpers --------------------------------------------------------


def evaluate_detector(
    model: SSDDetector, dataset: DetectionDataset, batch: int = 16
) -> float:
    """mAP of ``model`` over ``dataset`` (the Table I evaluation loop)."""
    preds = []
    for start in range(0, len(dataset), batch):
        images = np.stack(
            [dataset[i].image for i in range(start, min(start + batch, len(dataset)))]
        )
        preds.extend(model.predict(images, score_threshold=0.3))
    result = evaluate_map(
        preds, [d.boxes for d in dataset], [d.labels for d in dataset]
    )
    return result.map_score


def himax_finetune_set(finetune_images: int, seed: int) -> DetectionDataset:
    """The onboard-domain fine-tuning set Table I trains and calibrates on."""
    return make_himax_like(finetune_images, hw=TINY_HW, seed=seed + 3)


def calibration_batch(dataset: DetectionDataset) -> np.ndarray:
    """The int8 calibration images (first :data:`CALIBRATION_IMAGES`)."""
    n = min(CALIBRATION_IMAGES, len(dataset))
    return np.stack([dataset[i].image for i in range(n)])


def rebuild_detector(width: float, state: dict, seed: int = 0) -> SSDDetector:
    """A tiny-spec detector carrying the (decoded) trained weights."""
    det = SSDDetector(tiny_spec(width), rng=np.random.default_rng(seed + 10))
    det.load_state_dict(decode_state(state))
    return det


# -- job callables ---------------------------------------------------------


def train_width(
    width: float,
    train_images: int,
    finetune_images: int,
    test_images: int,
    pretrain_epochs: int,
    finetune_epochs: int,
    batch_size: int,
    seed: int,
) -> dict:
    """Table I pipeline for one SSD width: train, fine-tune, quantize, eval.

    Takes exactly the :class:`~repro.experiments.config.ExperimentScale`
    fields it consumes -- not the whole scale -- so the job hash (and
    with it the cache key) ignores knobs that cannot change this
    width's training: ``n_runs``, ``flight_time_s``, the scale's
    ``name``, and which *other* widths the sweep trains.

    Args:
        width: SSD width multiplier.
        train_images: web-domain training images.
        finetune_images: onboard-domain fine-tuning images.
        test_images: test images per domain.
        pretrain_epochs: web training epochs.
        finetune_epochs: onboard fine-tuning epochs.
        batch_size: training batch size.
        seed: the experiment's root seed (dataset + init streams are
            derived with the same offsets the original in-process loop
            used, so the decomposition is float-identical).

    Returns:
        ``{"maps": {...}, "state": <encoded state dict>}`` where
        ``maps`` holds the four Table I cells of this width and
        ``state`` the fine-tuned float detector's weights.
    """
    web_train = rebalance_with_translation(
        make_openimages_like(train_images, hw=TINY_HW, seed=seed), seed=seed + 1
    )
    web_test = make_openimages_like(test_images, hw=TINY_HW, seed=seed + 2)
    himax_train = himax_finetune_set(finetune_images, seed)
    himax_test = make_himax_like(test_images, hw=TINY_HW, seed=seed + 4)

    det = SSDDetector(tiny_spec(width), rng=np.random.default_rng(seed + 10))
    Trainer(
        det,
        paper_pretrain_config(pretrain_epochs, batch_size),
    ).fit(web_train)
    maps = {
        "web_float": evaluate_detector(det, web_test),
        "himax_float": evaluate_detector(det, himax_test),
    }

    Trainer(
        det,
        paper_finetune_config(finetune_epochs, batch_size),
        qat=QATWeightQuantizer(bits=8),
    ).fit(himax_train)
    maps["himax_finetuned_float"] = evaluate_detector(det, himax_test)

    qdet = quantize_detector(det, calibration_batch(himax_train))
    maps["himax_finetuned_int8"] = evaluate_detector(qdet, himax_test)
    return {"maps": maps, "state": encode_state(det.state_dict())}


def deployment_plan(width: float) -> dict:
    """Table II/IV job: plan one width's GAP8 deployment.

    Deterministic from ``width`` alone (the plan traces the untrained
    full-resolution architecture), which is exactly why Table II and
    Table IV share cached results.
    """
    plan = GAPFlowDeployer().plan(SSDDetector(full_scale_spec(width)))
    return {"plan": plan_to_dict(plan)}


def explore_policy(
    policy: str,
    speed: float,
    flight_time_s: float,
    seed: Optional[np.random.SeedSequence] = None,
) -> dict:
    """Fig. 3 job: fly one policy in the paper room, return its heatmap.

    The occupancy grid ships as exact arrays plus the start pose its
    reachable-cell normalization was seeded from; rebuild it with
    :func:`rebuild_grid`.
    """
    room = paper_room()
    start = Vec2(1.0, 1.0)  # the platform default, made explicit so the
    # payload can rebuild the grid's reachable-cell bookkeeping exactly
    mission = ExplorationMission(
        room,
        make_policy(policy, PolicyConfig(cruise_speed=speed)),
        flight_time_s=flight_time_s,
        start=start,
    )
    result = mission.run(seed=seed)
    grid = result.grid
    return {
        "coverage": result.coverage,
        "occupancy_time": encode_array(grid.occupancy_time),
        "visited": encode_array(grid.visited_mask),
        "cell_size": grid.cell_size,
        "start": [start.x, start.y],
    }


def rebuild_grid(payload: dict) -> OccupancyGrid:
    """The live grid of an :func:`explore_policy` payload (paper room).

    Rebuilt with the payload's start pose, so the grid's
    ``coverage()``/``reachable_cells`` agree with the mission's.
    """
    return OccupancyGrid.from_occupancy(
        paper_room(),
        decode_array(payload["occupancy_time"]),
        decode_array(payload["visited"]),
        cell_size=payload["cell_size"],
        start=Vec2(*payload["start"]),
    )


# -- job builders ----------------------------------------------------------


def table1_job(width: float, scale: ExperimentScale, seed: int) -> JobSpec:
    """The per-width Table I training job.

    The payload carries only the scale fields the training consumes, so
    e.g. changing ``n_runs`` (a flight knob) or dropping a width from
    the sweep keeps every other width's cached training valid.
    """
    return JobSpec(
        fn="repro.experiments.jobs:train_width",
        kwargs={
            "width": width,
            "train_images": scale.train_images,
            "finetune_images": scale.finetune_images,
            "test_images": scale.test_images,
            "pretrain_epochs": scale.pretrain_epochs,
            "finetune_epochs": scale.finetune_epochs,
            "batch_size": scale.batch_size,
            "seed": seed,
        },
        version=EXPERIMENT_JOB_VERSION,
        label=f"table1 width {width:g}x",
    )


def plan_job(width: float) -> JobSpec:
    """The per-width deployment-plan job (shared by Tables II and IV)."""
    return JobSpec(
        fn="repro.experiments.jobs:deployment_plan",
        kwargs={"width": width},
        version=EXPERIMENT_JOB_VERSION,
        label=f"deploy width {width:g}x",
    )


def fig3_job(policy: str, speed: float, flight_time_s: float, seed: int) -> JobSpec:
    """The per-policy Fig. 3 exploration job.

    Every policy flies the *same* stream (the paper seeds each flight
    identically), so the seed is job provenance with an empty spawn
    key: ``SeedSequence(seed)`` exactly as the in-process loop drew it.
    """
    return JobSpec(
        fn="repro.experiments.jobs:explore_policy",
        kwargs={"policy": policy, "speed": speed, "flight_time_s": flight_time_s},
        seed_entropy=seed,
        spawn_key=(),
        version=EXPERIMENT_JOB_VERSION,
        label=f"fig3 {policy}",
    )


#: Worklists, for introspection/tests: every job kind this module owns.
JOB_KINDS = ("train_width", "deployment_plan", "explore_policy")


def table1_jobs(scale: ExperimentScale, seed: int) -> List[JobSpec]:
    """One training job per configured width."""
    return [table1_job(w, scale, seed) for w in scale.widths]


def plan_jobs(scale: ExperimentScale) -> List[JobSpec]:
    """One deployment-plan job per configured width."""
    return [plan_job(w) for w in scale.widths]
