"""Scale configuration shared by every experiment regenerator."""

from __future__ import annotations

import os
from dataclasses import asdict, dataclass, replace
from typing import Tuple


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs trading fidelity for runtime.

    Attributes:
        n_runs: flights per configuration (paper: 5).
        flight_time_s: flight duration (paper: 180 s).
        train_images: web-domain training images.
        finetune_images: onboard-domain fine-tuning images.
        test_images: test images per domain.
        pretrain_epochs: web training epochs.
        finetune_epochs: onboard fine-tuning epochs.
        batch_size: training batch size.
        widths: SSD width multipliers to evaluate.
        name: label recorded in EXPERIMENTS.md.
    """

    n_runs: int = 2
    flight_time_s: float = 120.0
    train_images: int = 120
    finetune_images: int = 48
    test_images: int = 48
    pretrain_epochs: int = 5
    finetune_epochs: int = 3
    batch_size: int = 8
    widths: Tuple[float, ...] = (1.0, 0.75, 0.5)
    name: str = "smoke"

    def __post_init__(self) -> None:
        object.__setattr__(self, "widths", tuple(self.widths))
        if self.n_runs <= 0:
            raise ValueError(f"n_runs must be positive, got {self.n_runs}")
        if self.flight_time_s <= 0.0:
            raise ValueError(
                f"flight_time_s must be positive, got {self.flight_time_s}"
            )
        if not self.widths:
            raise ValueError("widths must not be empty")

    def to_dict(self) -> dict:
        """Canonical plain-data form (JSON- and job-payload-friendly)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "ExperimentScale":
        """Inverse of :meth:`to_dict` (tolerates JSON's list-for-tuple)."""
        return cls(**dict(data))


SMOKE_SCALE = ExperimentScale()

FULL_SCALE = ExperimentScale(
    n_runs=5,
    flight_time_s=180.0,
    train_images=360,
    finetune_images=96,
    test_images=96,
    pretrain_epochs=12,
    finetune_epochs=6,
    batch_size=8,
    widths=(1.0, 0.75, 0.5),
    name="full",
)


def default_scale() -> ExperimentScale:
    """SMOKE unless the environment asks for the paper-scale run."""
    return FULL_SCALE if os.environ.get("REPRO_FULL") == "1" else SMOKE_SCALE


def quick(scale: ExperimentScale, **overrides) -> ExperimentScale:
    """Copy with overrides (keyword-only convenience)."""
    return replace(scale, **overrides)
