"""Table I: mAP of the SSD CNNs across domains, fine-tuning and precision.

Reproduces the four-row structure of the paper's Table I for each width
multiplier:

1. train on the web domain, test on the web domain (float32);
2. same weights tested on the onboard (Himax) domain -- the domain gap;
3. after fine-tuning (with QAT) on the onboard domain (float32);
4. the int8 conversion of the fine-tuned model.

Each width multiplier is one self-contained training job
(:func:`repro.experiments.jobs.train_width`) submitted to the shared
:class:`~repro.exec.Executor`: pass ``workers=`` to train the widths in
parallel, and a ``cache=`` to make reruns (and every other consumer of
the same jobs) load finished widths instead of retraining them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exec import Executor, ProgressCallback, ResultCache, RetryPolicy
from repro.experiments import jobs
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import ascii_table
from repro.quantization import quantize_detector
from repro.vision import SSDDetector

#: The (testing dataset, fine-tuned, format) rows of the paper's table,
#: in print order, keyed by the job payload's ``maps`` entries.
ROW_KEYS = (
    ("OpenImages", False, "float32", "web_float"),
    ("Himax", False, "float32", "himax_float"),
    ("Himax", True, "float32", "himax_finetuned_float"),
    ("Himax", True, "int8", "himax_finetuned_int8"),
)


@dataclass
class Table1Row:
    """One (testing dataset, fine-tuning, format) row for all widths."""

    testing_dataset: str
    finetuned: bool
    format: str
    map_by_width: Dict[float, float]


@dataclass
class Table1Result:
    """All rows plus the trained models for reuse by other experiments."""

    rows: List[Table1Row]
    detectors: Dict[float, SSDDetector]
    int8_detectors: Dict[float, SSDDetector]
    scale_name: str

    def map_int8_himax(self) -> Dict[float, float]:
        """The int8 onboard-domain mAPs (feeds the Table III simulation)."""
        for row in self.rows:
            if row.format == "int8" and row.finetuned:
                return dict(row.map_by_width)
        return {}


def run(
    scale: Optional[ExperimentScale] = None,
    seed: int = 0,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    retry: Optional[RetryPolicy] = None,
) -> Table1Result:
    """Train, fine-tune, quantize and evaluate all width multipliers.

    Args:
        scale: experiment scale (``None`` = :func:`default_scale`).
        seed: root seed of the dataset and weight-init streams.
        workers: executor pool size (``None`` serial, ``0`` all cores);
            each width trains in its own job, bit-identically to the
            serial path.
        cache: optional persistent result cache; widths already trained
            with identical (scale, seed, code version) load instead of
            retraining.
    """
    scale = scale or default_scale()
    payloads = Executor(workers=workers, cache=cache, retry=retry).run(
        jobs.table1_jobs(scale, seed), progress=progress
    )

    maps: Dict[str, Dict[float, float]] = {key: {} for *_, key in ROW_KEYS}
    detectors: Dict[float, SSDDetector] = {}
    int8_detectors: Dict[float, SSDDetector] = {}
    calib = jobs.calibration_batch(
        jobs.himax_finetune_set(scale.finetune_images, seed)
    )
    for width, payload in zip(scale.widths, payloads):
        for *_, key in ROW_KEYS:
            maps[key][width] = payload["maps"][key]
        # Rebuild the fine-tuned float model from the job's weights; the
        # int8 conversion is deterministic from (weights, calibration
        # batch), so re-deriving it here is exact -- cached, pooled and
        # serial runs hand back identical models.
        det = jobs.rebuild_detector(width, payload["state"], seed=seed)
        detectors[width] = det
        int8_detectors[width] = quantize_detector(det, calib)

    rows = [
        Table1Row(ds, ft, fmt, maps[key]) for ds, ft, fmt, key in ROW_KEYS
    ]
    return Table1Result(
        rows=rows, detectors=detectors, int8_detectors=int8_detectors,
        scale_name=scale.name,
    )


def format_table(result: Table1Result) -> str:
    """Render the paper's Table I layout."""
    widths = sorted(
        {w for row in result.rows for w in row.map_by_width}, reverse=True
    )
    headers = ["Testing dataset", "Fine-tuning", "Format"] + [
        f"SSD {w:g}x" for w in widths
    ]
    rows = []
    for row in result.rows:
        rows.append(
            [row.testing_dataset, "yes" if row.finetuned else "no", row.format]
            + [f"{row.map_by_width.get(w, float('nan')):.0%}" for w in widths]
        )
    return ascii_table(
        headers, rows, title=f"Table I (scale={result.scale_name}): mAP of the SSD CNNs"
    )
