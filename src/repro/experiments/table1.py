"""Table I: mAP of the SSD CNNs across domains, fine-tuning and precision.

Reproduces the four-row structure of the paper's Table I for each width
multiplier:

1. train on the web domain, test on the web domain (float32);
2. same weights tested on the onboard (Himax) domain -- the domain gap;
3. after fine-tuning (with QAT) on the onboard domain (float32);
4. the int8 conversion of the fine-tuned model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.datasets import (
    make_himax_like,
    make_openimages_like,
    rebalance_with_translation,
)
from repro.datasets.base import DetectionDataset
from repro.evaluation import evaluate_map
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import ascii_table
from repro.quantization import QATWeightQuantizer, quantize_detector
from repro.vision import SSDDetector, tiny_spec
from repro.vision.training import (
    Trainer,
    paper_finetune_config,
    paper_pretrain_config,
)


@dataclass
class Table1Row:
    """One (testing dataset, fine-tuning, format) row for all widths."""

    testing_dataset: str
    finetuned: bool
    format: str
    map_by_width: Dict[float, float]


@dataclass
class Table1Result:
    """All rows plus the trained models for reuse by other experiments."""

    rows: List[Table1Row]
    detectors: Dict[float, SSDDetector]
    int8_detectors: Dict[float, SSDDetector]
    scale_name: str

    def map_int8_himax(self) -> Dict[float, float]:
        """The int8 onboard-domain mAPs (feeds the Table III simulation)."""
        for row in self.rows:
            if row.format == "int8" and row.finetuned:
                return dict(row.map_by_width)
        return {}


def _evaluate(model: SSDDetector, dataset: DetectionDataset, batch: int = 16) -> float:
    preds = []
    for start in range(0, len(dataset), batch):
        images = np.stack(
            [dataset[i].image for i in range(start, min(start + batch, len(dataset)))]
        )
        preds.extend(model.predict(images, score_threshold=0.3))
    result = evaluate_map(
        preds, [d.boxes for d in dataset], [d.labels for d in dataset]
    )
    return result.map_score


def run(scale: ExperimentScale = None, seed: int = 0) -> Table1Result:
    """Train, fine-tune, quantize and evaluate all width multipliers."""
    scale = scale or default_scale()
    hw = (48, 64)
    web_train = rebalance_with_translation(
        make_openimages_like(scale.train_images, hw=hw, seed=seed), seed=seed + 1
    )
    web_test = make_openimages_like(scale.test_images, hw=hw, seed=seed + 2)
    himax_train = make_himax_like(scale.finetune_images, hw=hw, seed=seed + 3)
    himax_test = make_himax_like(scale.test_images, hw=hw, seed=seed + 4)

    maps: Dict[Tuple[str, bool, str], Dict[float, float]] = {
        ("OpenImages", False, "float32"): {},
        ("Himax", False, "float32"): {},
        ("Himax", True, "float32"): {},
        ("Himax", True, "int8"): {},
    }
    detectors: Dict[float, SSDDetector] = {}
    int8_detectors: Dict[float, SSDDetector] = {}
    for width in scale.widths:
        det = SSDDetector(tiny_spec(width), rng=np.random.default_rng(seed + 10))
        Trainer(
            det,
            paper_pretrain_config(scale.pretrain_epochs, scale.batch_size),
        ).fit(web_train)
        maps[("OpenImages", False, "float32")][width] = _evaluate(det, web_test)
        maps[("Himax", False, "float32")][width] = _evaluate(det, himax_test)

        Trainer(
            det,
            paper_finetune_config(scale.finetune_epochs, scale.batch_size),
            qat=QATWeightQuantizer(bits=8),
        ).fit(himax_train)
        maps[("Himax", True, "float32")][width] = _evaluate(det, himax_test)

        calib = np.stack([himax_train[i].image for i in range(min(16, len(himax_train)))])
        qdet = quantize_detector(det, calib)
        maps[("Himax", True, "int8")][width] = _evaluate(qdet, himax_test)
        detectors[width] = det
        int8_detectors[width] = qdet

    rows = [
        Table1Row(ds, ft, fmt, maps[(ds, ft, fmt)]) for (ds, ft, fmt) in maps
    ]
    return Table1Result(
        rows=rows, detectors=detectors, int8_detectors=int8_detectors,
        scale_name=scale.name,
    )


def format_table(result: Table1Result) -> str:
    """Render the paper's Table I layout."""
    widths = sorted(
        {w for row in result.rows for w in row.map_by_width}, reverse=True
    )
    headers = ["Testing dataset", "Fine-tuning", "Format"] + [
        f"SSD {w:g}x" for w in widths
    ]
    rows = []
    for row in result.rows:
        rows.append(
            [row.testing_dataset, "yes" if row.finetuned else "no", row.format]
            + [f"{row.map_by_width.get(w, float('nan')):.0%}" for w in widths]
        )
    return ascii_table(
        headers, rows, title=f"Table I (scale={result.scale_name}): mAP of the SSD CNNs"
    )
