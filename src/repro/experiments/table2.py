"""Table II: onboard performance of the SSDs on GAP8.

Params / MMAC are exact properties of the full-resolution architectures;
MAC-per-cycle, FPS and power come from the calibrated GAP8 models. Each
width's deployment plan is one execution-layer job
(:func:`repro.experiments.jobs.deployment_plan`), shared by content hash
with Table IV: whichever runs first leaves the plan in the cache for
the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.exec import Executor, ProgressCallback, ResultCache, RetryPolicy
from repro.experiments import jobs
from repro.experiments.config import ExperimentScale, default_scale
from repro.experiments.reporting import ascii_table
from repro.hw import AIDeckPowerModel, DeploymentPlan


@dataclass
class Table2Row:
    """One SSD variant's onboard figures."""

    width: float
    params: int
    macs: int
    efficiency: float
    fps: float
    power_w: float


@dataclass
class Table2Result:
    rows: List[Table2Row]
    plans: Dict[float, DeploymentPlan]
    scale_name: str


def run(
    scale: Optional[ExperimentScale] = None,
    workers: Optional[int] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressCallback] = None,
    retry: Optional[RetryPolicy] = None,
) -> Table2Result:
    """Deploy every width multiplier and collect the Table II columns."""
    scale = scale or default_scale()
    payloads = Executor(workers=workers, cache=cache, retry=retry).run(
        jobs.plan_jobs(scale), progress=progress
    )
    power = AIDeckPowerModel()
    rows = []
    plans = {}
    for width, payload in zip(scale.widths, payloads):
        plan = jobs.plan_from_dict(payload["plan"])
        plans[width] = plan
        rows.append(
            Table2Row(
                width=width,
                params=plan.cost.total_params,
                macs=plan.cost.total_macs,
                efficiency=plan.performance.efficiency_mac_per_cycle,
                fps=plan.performance.fps,
                power_w=power.power_w(plan.performance),
            )
        )
    return Table2Result(rows=rows, plans=plans, scale_name=scale.name)


def format_table(result: Table2Result) -> str:
    headers = ["SSD", "Parameters", "Operations", "Efficiency", "Throughput", "AI-deck power"]
    rows = [
        [
            f"{r.width:g}x",
            f"{r.params / 1e6:.1f}M",
            f"{r.macs / 1e6:.0f} MMAC",
            f"{r.efficiency:.1f} MAC/cyc",
            f"{r.fps:.1f} FPS",
            f"{r.power_w * 1e3:.1f} mW",
        ]
        for r in result.rows
    ]
    return ascii_table(headers, rows, title="Table II: SSD CNNs' onboard performance")
