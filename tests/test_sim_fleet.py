"""Fleet-vectorized stepping: bit-identity with the serial mission loop.

The fleet stepper's whole contract is that it is *invisible* in the
results: ``fly_fleet(specs)`` must return records bit-identical to
``fly_mission(spec)`` for every member, on every world. These tests pin
that contract across all preset scenarios, all generated families, both
mission kinds, mixed per-mission configurations (policies, speeds, SSD
widths, flight times), and the degenerate N=1 block -- plus the
execution-layer wiring (``run_campaign(fleet_block=)``) and the
one-time ``MISSION_JOB_VERSION`` bump that re-keyed the mission cache
when per-sensor seed streams landed.
"""

import pytest

from repro import schemas
from repro.errors import MissionError
from repro.exec import JobFailure, ResultCache
from repro.sim import Campaign, get_scenario, scenario_names
from repro.sim.campaign import MissionSpec
from repro.sim.fleet import fleet_key, fly_fleet
from repro.sim.generators import get_family
from repro.sim.runner import fly_mission, mission_job, run_campaign

POLICIES = ("pseudo-random", "wall-following", "spiral", "rotate-and-measure")


def _specs(scenario, kind, n, flight_times=None, widths=None):
    """N missions over one scenario, varying every per-mission axis."""
    return [
        MissionSpec(
            index=i,
            scenario=scenario,
            kind=kind,
            policy=POLICIES[i % len(POLICIES)],
            speed=(0.5, 0.75, 0.25)[i % 3],
            ssd_width=(widths[i % len(widths)] if widths else scenario.ssd_width),
            run_idx=i,
            flight_time_s=(flight_times[i] if flight_times else 8.0),
            seed_entropy=4242,
            spawn_key=(5, i),
        )
        for i in range(n)
    ]


def _assert_fleet_matches_serial(specs):
    fleet = fly_fleet(specs)
    for outcome, spec in zip(fleet, specs):
        serial = fly_mission(spec)[0]
        assert outcome.to_dict() == serial.to_dict(), (
            f"fleet diverged from serial on {spec.scenario.name}/"
            f"{spec.policy} run {spec.run_idx}"
        )


@pytest.mark.parametrize("name", scenario_names())
def test_fleet_matches_serial_on_every_preset(name):
    scenario = get_scenario(name)
    _assert_fleet_matches_serial(_specs(scenario, "explore", 3))


@pytest.mark.parametrize(
    "family",
    ["perfect-maze", "random-apartment", "cluttered-warehouse", "scatter-field"],
)
def test_fleet_matches_serial_on_generated_worlds(family):
    scenario = get_family(family).generate(seed=3)
    _assert_fleet_matches_serial(_specs(scenario, "explore", 2, flight_times=[6.0, 6.0]))


def test_fleet_matches_serial_search_mixed_widths():
    """Search missions with per-mission detector operating points.

    Different SSD widths mean different camera frame rates, so the
    members of one block sample frames on *different* tick subsets --
    the fleet must keep a per-mission frame schedule.
    """
    scenario = get_scenario("paper-room")
    specs = _specs(scenario, "search", 3, widths=["1.0", "0.75", "0.5"])
    _assert_fleet_matches_serial(specs)


def test_fleet_early_finish_masking():
    """Shorter missions retire mid-block without disturbing the rest."""
    scenario = get_scenario("paper-room")
    specs = _specs(scenario, "explore", 4, flight_times=[4.0, 12.0, 2.0, 8.0])
    _assert_fleet_matches_serial(specs)


def test_fleet_single_mission_degenerate():
    scenario = get_scenario("paper-room")
    _assert_fleet_matches_serial(_specs(scenario, "explore", 1))


def test_fleet_record_order_follows_spec_order():
    scenario = get_scenario("paper-room")
    specs = _specs(scenario, "explore", 3, flight_times=[8.0, 2.0, 5.0])
    records = fly_fleet(specs)
    assert [r.index for r in records] == [s.index for s in specs]


def test_fleet_empty_block():
    assert fly_fleet([]) == []


def test_fleet_rejects_mixed_worlds():
    a = _specs(get_scenario("paper-room"), "explore", 1)
    b = _specs(get_scenario("apartment"), "explore", 1)
    assert fleet_key(a[0]) != fleet_key(b[0])
    with pytest.raises(MissionError):
        fly_fleet(a + b)


def test_fleet_rejects_mixed_kinds():
    scenario = get_scenario("paper-room")
    specs = _specs(scenario, "explore", 1) + _specs(scenario, "search", 1)
    with pytest.raises(MissionError):
        fly_fleet(specs)


# -- execution-layer wiring -------------------------------------------------


def _campaign(**overrides):
    kwargs = dict(
        name="fleet-test",
        scenarios=(get_scenario("paper-room"),),
        policies=("pseudo-random", "wall-following"),
        n_runs=2,
        flight_time_s=5.0,
        kind="explore",
        seed=11,
    )
    kwargs.update(overrides)
    return Campaign(**kwargs)


def test_run_campaign_fleet_block_byte_identical():
    campaign = _campaign()
    serial = run_campaign(campaign)
    fleet = run_campaign(campaign, fleet_block=8)
    assert fleet.to_json() == serial.to_json()


def test_run_campaign_fleet_block_one_uses_serial_path():
    campaign = _campaign()
    serial = run_campaign(campaign)
    fleet = run_campaign(campaign, fleet_block=1)
    assert fleet.to_json() == serial.to_json()


def test_run_campaign_fleet_reports_members_individually(tmp_path):
    """Progress and the execution report count missions, not blocks."""
    campaign = _campaign()
    n = len(campaign.missions())
    seen = []
    exec_seen = []

    def progress(done, total, record):
        seen.append((done, total, record.index))

    def exec_progress(done, total, job, payload, cached):
        assert not isinstance(payload, JobFailure)
        exec_seen.append((done, total, cached))

    result = run_campaign(
        campaign, fleet_block=3, progress=progress, exec_progress=exec_progress
    )
    assert [s[0] for s in seen] == list(range(1, n + 1))
    assert all(s[1] == n for s in seen)
    assert len(exec_seen) == n
    report = result.execution
    assert report is not None
    assert report.total == n
    assert report.executed == n
    assert report.cached == 0
    # Per-job wall clocks are the block time amortized per member.
    assert report.job_mean_s > 0.0
    assert report.job_min_s <= report.job_mean_s <= report.job_max_s
    assert report.slowest_label


def test_run_campaign_fleet_shares_cache_with_serial(tmp_path):
    """Fleet-written cache entries are ordinary per-mission entries."""
    campaign = _campaign()
    n = len(campaign.missions())
    cache = ResultCache(str(tmp_path / "cache"))
    fleet = run_campaign(campaign, fleet_block=4, cache=cache)
    assert fleet.execution.executed == n
    served = run_campaign(campaign, cache=cache)
    assert served.execution.cached == n
    assert served.execution.executed == 0
    assert served.to_json() == fleet.to_json()
    # And the reverse: a fleet run over a warm cache flies nothing.
    refleet = run_campaign(campaign, fleet_block=4, cache=cache)
    assert refleet.execution.cached == n
    assert refleet.execution.executed == 0
    assert refleet.to_json() == fleet.to_json()


# -- the one-time cache re-key ----------------------------------------------


def test_mission_job_version_bumped_exactly_once():
    """Per-sensor seed streams re-keyed every cached mission, once.

    The mission job rides its own schema family now; v3 is the
    per-sensor-streams generation. Bumping it again (or sliding it back)
    invalidates every cached mission on disk -- this pin makes that a
    deliberate act.
    """
    assert schemas.MISSION_JOB_VERSION == "repro.sim.mission-job/v3"
    assert schemas.parse(schemas.MISSION_JOB_VERSION) == (
        "repro.sim.mission-job",
        3,
    )


def test_old_cache_entries_are_clean_misses(tmp_path):
    """Pre-bump entries neither serve nor poison the re-keyed jobs."""
    import dataclasses

    spec = _specs(get_scenario("paper-room"), "explore", 1)[0]
    job = mission_job(spec)
    assert job.version == schemas.MISSION_JOB_VERSION
    old_job = dataclasses.replace(job, version="repro.sim.mission-job/v2")
    assert old_job.content_hash() != job.content_hash()
    cache = ResultCache(str(tmp_path / "cache"))
    cache.put(old_job, {"stale": True})
    value, hit = cache.get(job)
    assert not hit
    # The stale entry stays readable under its own (old) identity.
    value, hit = cache.get(old_job)
    assert hit and value == {"stale": True}
