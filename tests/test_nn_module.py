"""Tests for the Module/Parameter infrastructure and serialization."""

import numpy as np
import pytest

from repro.nn import BatchNorm2d, Conv2d, ReLU6, Sequential, load_state, save_state
from repro.nn.module import Module, Parameter


class TestParameter:
    def test_grad_shape(self):
        p = Parameter(np.ones((2, 3)))
        assert p.grad.shape == (2, 3)
        assert p.size == 6
        p.grad += 1.0
        p.zero_grad()
        assert np.all(p.grad == 0.0)


class TestModuleTree:
    def test_named_parameters(self):
        seq = Sequential(Conv2d(3, 4, 3, rng=np.random.default_rng(0)), BatchNorm2d(4))
        names = [n for n, _ in seq.named_parameters()]
        assert "layer0.weight" in names
        assert "layer1.gamma" in names

    def test_num_parameters(self):
        conv = Conv2d(3, 4, 3, bias=True)
        assert conv.num_parameters() == 3 * 4 * 9 + 4

    def test_train_eval_recursive(self):
        seq = Sequential(Conv2d(3, 4, 1), BatchNorm2d(4), ReLU6())
        seq.eval()
        assert not seq.training
        assert not seq[1].training
        seq.train()
        assert seq[1].training

    def test_zero_grad_recursive(self):
        seq = Sequential(Conv2d(3, 4, 1))
        x = np.random.default_rng(0).normal(size=(1, 3, 4, 4))
        seq.forward(x)
        seq.backward(np.ones((1, 4, 4, 4)))
        assert np.abs(seq[0].weight.grad).sum() > 0.0
        seq.zero_grad()
        assert np.abs(seq[0].weight.grad).sum() == 0.0


class TestStateDict:
    def test_roundtrip(self):
        a = Sequential(Conv2d(3, 4, 3, rng=np.random.default_rng(1)), BatchNorm2d(4))
        b = Sequential(Conv2d(3, 4, 3, rng=np.random.default_rng(2)), BatchNorm2d(4))
        x = np.random.default_rng(0).normal(size=(2, 3, 5, 5))
        a.forward(x)  # update BN running stats
        b.load_state_dict(a.state_dict())
        a.eval()
        b.eval()
        assert np.allclose(a.forward(x), b.forward(x))

    def test_buffers_saved(self):
        bn = BatchNorm2d(3)
        bn.forward(np.random.default_rng(0).normal(size=(4, 3, 2, 2)))
        state = bn.state_dict()
        assert "running_mean" in state
        assert not np.allclose(state["running_mean"], 0.0)

    def test_shape_mismatch_rejected(self):
        a = Conv2d(3, 4, 3)
        state = a.state_dict()
        state["weight"] = np.zeros((1, 1, 1, 1))
        with pytest.raises(Exception):
            a.load_state_dict(state)

    def test_unknown_key_rejected(self):
        a = Conv2d(3, 4, 3)
        state = a.state_dict()
        state["bogus"] = np.zeros(3)
        with pytest.raises(KeyError):
            a.load_state_dict(state)

    def test_missing_key_rejected(self):
        a = Conv2d(3, 4, 3)
        with pytest.raises(KeyError):
            a.load_state_dict({})

    def test_file_roundtrip(self, tmp_path):
        a = Sequential(Conv2d(3, 4, 3, rng=np.random.default_rng(1)), BatchNorm2d(4))
        path = tmp_path / "model.npz"
        save_state(a, path)
        b = Sequential(Conv2d(3, 4, 3, rng=np.random.default_rng(9)), BatchNorm2d(4))
        load_state(b, path)
        x = np.random.default_rng(0).normal(size=(1, 3, 4, 4))
        a.eval(), b.eval()
        assert np.allclose(a.forward(x), b.forward(x))


class TestSequential:
    def test_indexing(self):
        seq = Sequential(ReLU6(), ReLU6())
        assert len(seq) == 2
        assert isinstance(seq[0], ReLU6)

    def test_forward_order(self):
        class PlusOne(Module):
            def forward(self, x):
                return x + 1.0

            def backward(self, g):
                return g

        seq = Sequential(PlusOne(), PlusOne(), PlusOne())
        assert seq.forward(np.zeros(1))[0] == 3.0
