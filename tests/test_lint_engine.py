"""Engine semantics: suppressions, baseline, JSON report, CLI, meta-test.

The meta-test at the bottom is the linter's own acceptance gate: the
repo's ``src/`` tree must produce zero new findings. Any determinism
violation introduced anywhere in the codebase fails the tier-1 suite
here before it ever reaches CI's dedicated lint job.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.lint import Baseline, lint_paths, lint_source
from repro.lint.__main__ import main as lint_main
from repro import schemas

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BAD_SOURCE = "import numpy as np\nrng = np.random.default_rng()\n"


def codes(source, path="repro/sim/snippet.py"):
    return [f.code for f in lint_source(source, path=path)]


# -- inline suppressions -------------------------------------------------


def test_suppression_with_reason_silences():
    src = (
        "import numpy as np\n"
        "rng = np.random.default_rng()"
        "  # repro: noqa[RPR101] fixture helper, never hashed\n"
    )
    assert codes(src) == []


def test_suppression_missing_reason_is_rejected_and_does_not_suppress():
    src = (
        "import numpy as np\n"
        "rng = np.random.default_rng()  # repro: noqa[RPR101]\n"
    )
    assert sorted(codes(src)) == ["RPR001", "RPR101"]


def test_unused_suppression_flagged():
    src = "x = 1  # repro: noqa[RPR102] nothing here actually needs this\n"
    assert codes(src) == ["RPR002"]


def test_suppression_only_covers_listed_codes():
    src = (
        "import numpy as np, time\n"
        "rng = np.random.default_rng()  # repro: noqa[RPR102] wrong code\n"
    )
    # the RPR102 suppression is unused AND the RPR101 finding survives
    assert sorted(codes(src)) == ["RPR002", "RPR101"]


def test_suppression_in_string_literal_is_inert():
    """Only real comment tokens count; strings mentioning the syntax don't."""
    src = 'HELP = "write # repro: noqa[RPR101] with a reason"\n'
    assert codes(src) == []


def test_parse_error_reported_as_rpr000():
    assert codes("def broken(:\n") == ["RPR000"]


# -- fingerprints --------------------------------------------------------


def test_fingerprints_stable_across_line_moves():
    src_a = BAD_SOURCE
    src_b = "# a new leading comment\n" + BAD_SOURCE
    [f_a] = lint_source(src_a, path="repro/sim/snippet.py")
    [f_b] = lint_source(src_b, path="repro/sim/snippet.py")
    assert f_a.line != f_b.line
    assert f_a.fingerprint == f_b.fingerprint


def test_fingerprints_distinguish_repeated_snippets():
    src = BAD_SOURCE + "rng2 = np.random.default_rng()\n"
    findings = lint_source(src, path="repro/sim/snippet.py")
    assert len(findings) == 2
    assert len({f.fingerprint for f in findings}) == 2


# -- baseline ------------------------------------------------------------


@pytest.fixture
def bad_tree(tmp_path):
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "mod.py").write_text(BAD_SOURCE)
    return tmp_path


def test_baseline_grandfathers_known_findings(bad_tree, tmp_path):
    baseline_path = str(tmp_path / "baseline.json")
    report = lint_paths([str(bad_tree)])
    assert [f.code for f in report.findings] == ["RPR101"]
    assert report.exit_code == 1

    Baseline().save(baseline_path, report.findings)
    baseline = Baseline.load(baseline_path)
    report2 = lint_paths([str(bad_tree)], baseline=baseline)
    assert report2.findings == []
    assert [f.code for f in report2.grandfathered] == ["RPR101"]
    assert report2.stale_baseline == []
    assert report2.exit_code == 0


def test_baseline_detects_stale_entries(bad_tree, tmp_path):
    baseline_path = str(tmp_path / "baseline.json")
    report = lint_paths([str(bad_tree)])
    Baseline().save(baseline_path, report.findings)

    # fix the violation: the baseline entry must be reported stale
    (bad_tree / "repro" / "mod.py").write_text("x = 1\n")
    report2 = lint_paths([str(bad_tree)], baseline=Baseline.load(baseline_path))
    assert report2.findings == []
    assert report2.grandfathered == []
    assert len(report2.stale_baseline) == 1


def test_baseline_load_missing_file_is_empty(tmp_path):
    baseline = Baseline.load(str(tmp_path / "nope.json"))
    assert baseline.entries == {}


def test_baseline_rejects_wrong_schema(tmp_path):
    from repro.lint import LintError

    path = tmp_path / "baseline.json"
    path.write_text(json.dumps({"schema": "wrong/v1", "findings": []}))
    with pytest.raises(LintError):
        Baseline.load(str(path))


def test_baseline_file_carries_schema_token(bad_tree, tmp_path):
    baseline_path = tmp_path / "baseline.json"
    report = lint_paths([str(bad_tree)])
    Baseline().save(str(baseline_path), report.findings)
    doc = json.loads(baseline_path.read_text())
    assert doc["schema"] == schemas.LINT_BASELINE_SCHEMA
    assert [e["code"] for e in doc["findings"]] == ["RPR101"]


# -- JSON report ---------------------------------------------------------


def test_report_json_document(bad_tree):
    report = lint_paths([str(bad_tree)])
    doc = report.to_dict()
    assert doc["schema"] == schemas.LINT_REPORT_SCHEMA
    assert doc["files_scanned"] == 2
    assert doc["summary"] == {"new": 1, "grandfathered": 0, "stale_baseline": 0}
    [finding] = doc["findings"]
    assert finding["code"] == "RPR101"
    assert finding["path"].endswith("mod.py")
    assert finding["fingerprint"]
    # the document is canonical-JSON clean (string keys, plain data)
    assert json.loads(json.dumps(doc, sort_keys=True)) == doc


# -- CLI -----------------------------------------------------------------


def test_cli_exit_codes_and_baseline_flow(bad_tree, tmp_path, capsys):
    baseline_path = str(tmp_path / "baseline.json")
    target = str(bad_tree)

    assert lint_main([target]) == 1
    out = capsys.readouterr().out
    assert "RPR101" in out and "1 new finding" in out

    # write the baseline, then the same tree is clean
    assert lint_main([target, "--baseline", baseline_path, "--write-baseline"]) == 0
    capsys.readouterr()
    assert lint_main([target, "--baseline", baseline_path]) == 0

    # --check-baseline turns stale entries into a failure
    (bad_tree / "repro" / "mod.py").write_text("x = 1\n")
    capsys.readouterr()
    assert lint_main([target, "--baseline", baseline_path]) == 0
    assert lint_main([target, "--baseline", baseline_path, "--check-baseline"]) == 1


def test_cli_json_format(bad_tree, capsys):
    assert lint_main([str(bad_tree), "--format", "json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["schema"] == schemas.LINT_REPORT_SCHEMA
    assert doc["summary"]["new"] == 1


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR101", "RPR102", "RPR103", "RPR104", "RPR105", "RPR106"):
        assert code in out


def test_cli_write_baseline_requires_baseline_path(bad_tree, capsys):
    assert lint_main([str(bad_tree), "--write-baseline"]) == 2


def test_module_entrypoint_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.lint", "--list-rules"],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": os.path.join(REPO_ROOT, "src")},
    )
    assert proc.returncode == 0, proc.stderr
    assert "RPR101" in proc.stdout


# -- meta: the repo lints clean ------------------------------------------


def test_repo_source_tree_lints_clean():
    report = lint_paths([os.path.join(REPO_ROOT, "src")])
    assert report.files_scanned > 100
    details = "\n".join(
        f"{f.location()}: {f.code} {f.message}" for f in report.findings
    )
    assert report.findings == [], details
