"""The schema-token registry: frozen values, parsing, duplicate rejection."""

import pytest

from repro import schemas
from repro.schemas import SchemaError

#: Every persisted-artifact token the repo ships, frozen. Changing one
#: of these values invalidates artifacts on disk; this test forces that
#: to be a deliberate, reviewed act (bump the version, don't mutate).
FROZEN_TOKENS = {
    "FAILURE_SCHEMA": "repro.exec.failure/v1",
    "BROKER_SCHEMA": "repro.exec.queue/v1",
    "CACHE_SCHEMA": "repro.exec.result/v1",
    "TRACE_SCHEMA": "repro.obs.trace/v1",
    "RESULT_SCHEMA": "repro.sim.campaign-result/v2",
    "MISSION_JOB_VERSION": "repro.sim.mission-job/v3",
    "EXPERIMENT_JOB_VERSION": "repro.experiments.jobs/v1",
    "LINT_REPORT_SCHEMA": "repro.lint.report/v1",
    "LINT_BASELINE_SCHEMA": "repro.lint.baseline/v1",
}


def test_tokens_frozen():
    for name, value in FROZEN_TOKENS.items():
        assert getattr(schemas, name) == value


def test_every_frozen_token_registered():
    registered = schemas.registered_tokens()
    assert list(registered) == sorted(registered)
    for value in FROZEN_TOKENS.values():
        assert schemas.is_registered(value)
        assert value in registered


def test_consumer_modules_reexport_registry_tokens():
    """The scattered per-module constants are the registry's, not copies."""
    from repro.exec.cache import CACHE_SCHEMA
    from repro.exec.executor import FAILURE_SCHEMA
    from repro.exec.queue import BROKER_SCHEMA
    from repro.experiments.jobs import EXPERIMENT_JOB_VERSION
    from repro.obs.trace import TRACE_SCHEMA
    from repro.sim.results import RESULT_SCHEMA
    from repro.sim.runner import MISSION_JOB_VERSION

    assert CACHE_SCHEMA == schemas.CACHE_SCHEMA
    assert FAILURE_SCHEMA == schemas.FAILURE_SCHEMA
    assert BROKER_SCHEMA == schemas.BROKER_SCHEMA
    assert EXPERIMENT_JOB_VERSION == schemas.EXPERIMENT_JOB_VERSION
    assert TRACE_SCHEMA == schemas.TRACE_SCHEMA
    assert RESULT_SCHEMA == schemas.RESULT_SCHEMA
    assert MISSION_JOB_VERSION == schemas.MISSION_JOB_VERSION


def test_parse_family_version():
    token = schemas.RESULT_SCHEMA
    family, version = schemas.parse(token)
    assert family == "repro.sim.campaign-result"
    assert version == 2
    assert schemas.family(token) == family
    assert schemas.version(token) == version


@pytest.mark.parametrize(
    "bad",
    ["", "no-slash", "repro.thing/v", "repro.thing/vx", "thing/v1", "repro./v1"],
)
def test_parse_rejects_malformed(bad):
    with pytest.raises(SchemaError):
        schemas.parse(bad)


def test_register_rejects_duplicate_family():
    with pytest.raises(SchemaError):
        schemas.register("repro.exec.failure", 9)


def test_register_rejects_bad_family_name():
    for family in ("Exec.Bad", "repro.UPPER", "repro.trailing.", "notrepro.x"):
        with pytest.raises(SchemaError):
            schemas.register(family, 1)


def test_register_new_family_roundtrips():
    token = schemas.register("repro.test.test-schemas-roundtrip", 3)
    try:
        assert token == "repro.test.test-schemas-roundtrip/v3"
        assert schemas.is_registered(token)
        assert schemas.parse(token) == ("repro.test.test-schemas-roundtrip", 3)
    finally:
        # keep the process-wide registry clean for other tests
        schemas._REGISTRY.pop("repro.test.test-schemas-roundtrip", None)
