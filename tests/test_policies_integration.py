"""Integration tests: policies flying full missions in the paper room.

These reproduce the qualitative claims of Sec. IV-B on short flights.
"""

import numpy as np
import pytest

from repro.mission.explorer import ExplorationMission
from repro.policies import POLICY_NAMES, PolicyConfig, make_policy
from repro.world import cluttered_room, paper_room


@pytest.fixture(scope="module")
def room():
    return paper_room()


def fly(room, name, speed=0.5, seconds=120.0, seed=0):
    policy = make_policy(name, PolicyConfig(cruise_speed=speed))
    return ExplorationMission(room, policy, flight_time_s=seconds).run(seed=seed)


class TestAllPoliciesFly:
    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_no_crash_no_collision(self, room, name):
        result = fly(room, name, seconds=60.0)
        assert result.collisions == 0
        assert result.coverage > 0.02

    @pytest.mark.parametrize("name", POLICY_NAMES)
    def test_speed_sweep_runs(self, room, name):
        for speed in (0.1, 1.0):
            result = fly(room, name, speed=speed, seconds=30.0)
            assert result.distance_flown_m > 0.5


class TestPaperShape:
    def test_wall_following_stays_on_perimeter(self, room):
        result = fly(room, "wall-following", seconds=150.0)
        mask = result.grid.visited_mask
        # Interior cells (>= 1.5 m from every wall) stay untouched.
        inner = mask[3:-3, 3:-3]
        assert inner.mean() < 0.3

    def test_spiral_reaches_interior(self, room):
        result = fly(room, "spiral", seconds=180.0)
        mask = result.grid.visited_mask
        assert mask[3:-3, 3:-3].any()

    def test_pseudo_random_beats_rotate_measure(self, room):
        pr = np.mean([fly(room, "pseudo-random", seconds=120.0, seed=s).coverage for s in range(2)])
        rm = np.mean([fly(room, "rotate-and-measure", seconds=120.0, seed=s).coverage for s in range(2)])
        assert pr > rm

    def test_speed_helps_pseudo_random(self, room):
        slow = fly(room, "pseudo-random", speed=0.1, seconds=120.0).coverage
        fast = fly(room, "pseudo-random", speed=0.5, seconds=120.0).coverage
        assert fast > slow + 0.1


class TestClutteredRoom:
    @pytest.mark.parametrize("name", ["pseudo-random", "rotate-and-measure"])
    def test_policies_survive_clutter(self, name):
        room = cluttered_room(n_obstacles=3, seed=2)
        result = fly(room, name, seconds=60.0, seed=1)
        # Obstacle contact may graze but must not dominate the flight.
        assert result.collisions < 50
        assert result.coverage > 0.05
