"""Tests for the quantization package."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import QuantizationError
from repro.nn import BatchNorm2d, Conv2d, DepthwiseConv2d, ReLU6, Sequential
from repro.quantization import (
    MinMaxObserver,
    QATWeightQuantizer,
    dequantize,
    fake_quantize,
    fold_batchnorms,
    int8_conv2d,
    int8_depthwise_conv2d,
    quantize,
    quantize_detector,
    symmetric_scale,
)
from repro.quantization.observers import symmetric_scale as sym
from repro.vision import SSDDetector, tiny_spec

RNG = np.random.default_rng(0)


class TestPrimitives:
    def test_scale(self):
        assert symmetric_scale(127.0, bits=8) == pytest.approx(1.0)
        assert symmetric_scale(0.0) > 0.0  # degenerate tensors stay valid

    def test_quantize_bounds(self):
        x = np.array([-1e9, -1.0, 0.0, 1.0, 1e9])
        q = quantize(x, scale=0.01)
        assert q.min() == -127 and q.max() == 127

    @given(st.floats(0.01, 100.0))
    @settings(max_examples=30)
    def test_fake_quant_error_bound(self, max_abs):
        x = RNG.uniform(-max_abs, max_abs, size=100)
        scale = sym(max_abs)
        err = np.abs(fake_quantize(x, scale) - x)
        assert err.max() <= scale / 2 + 1e-12

    def test_roundtrip_on_grid(self):
        scale = 0.05
        x = np.arange(-127, 128) * scale
        np.testing.assert_allclose(dequantize(quantize(x, scale), scale), x)

    def test_bad_inputs(self):
        with pytest.raises(QuantizationError):
            quantize(np.ones(3), scale=0.0)
        with pytest.raises(QuantizationError):
            symmetric_scale(1.0, bits=1)


class TestObserver:
    def test_tracks_max(self):
        obs = MinMaxObserver()
        obs.observe(np.array([1.0, -3.0]))
        obs.observe(np.array([2.0]))
        assert obs.max_abs == 3.0

    def test_unobserved_raises(self):
        with pytest.raises(QuantizationError):
            MinMaxObserver().scale


class TestIntegerKernels:
    def test_int8_conv_matches_float(self):
        x = RNG.uniform(-1, 1, size=(2, 3, 8, 8))
        w = RNG.uniform(-0.5, 0.5, size=(4, 3, 3, 3))
        xs, ws = sym(1.0), sym(0.5)
        xq, wq = quantize(x, xs), quantize(w, ws)
        out_int = int8_conv2d(xq, wq, xs, ws, stride=1, padding=1)
        # Reference: float conv on the dequantized operands.
        conv = Conv2d(3, 4, 3, padding=1, bias=False)
        conv.weight.data = dequantize(wq, ws)
        out_float = conv.forward(dequantize(xq, xs))
        np.testing.assert_allclose(out_int, out_float, atol=1e-9)

    def test_int8_depthwise_matches_float(self):
        x = RNG.uniform(-1, 1, size=(2, 3, 6, 6))
        w = RNG.uniform(-0.5, 0.5, size=(3, 3, 3))
        xs, ws = sym(1.0), sym(0.5)
        xq, wq = quantize(x, xs), quantize(w, ws)
        out_int = int8_depthwise_conv2d(xq, wq, xs, ws, stride=1, padding=1)
        dw = DepthwiseConv2d(3, 3, padding=1, bias=False)
        dw.weight.data = dequantize(wq, ws)
        out_float = dw.forward(dequantize(xq, xs))
        np.testing.assert_allclose(out_int, out_float, atol=1e-9)

    def test_requires_integers(self):
        with pytest.raises(QuantizationError):
            int8_conv2d(np.ones((1, 1, 3, 3)), np.ones((1, 1, 1, 1), dtype=np.int32), 1.0, 1.0)


class TestFolding:
    def test_fold_preserves_eval_output(self):
        seq = Sequential(
            Conv2d(3, 6, 3, padding=1, bias=False, rng=RNG),
            BatchNorm2d(6),
            ReLU6(),
            DepthwiseConv2d(6, 3, padding=1, bias=False, rng=RNG),
            BatchNorm2d(6),
        )
        seq.train(True)
        for _ in range(3):
            seq.forward(RNG.normal(size=(4, 3, 8, 8)))
        seq.eval()
        x = RNG.normal(size=(2, 3, 8, 8))
        before = seq.forward(x)
        n = fold_batchnorms(seq)
        assert n == 2
        after = seq.forward(x)
        np.testing.assert_allclose(after, before, atol=1e-9)


class TestQAT:
    def test_weights_restored(self):
        conv = Conv2d(3, 4, 3, rng=RNG)
        original = conv.weight.data.copy()
        qat = QATWeightQuantizer()
        with qat.quantized_weights(conv):
            inside = conv.weight.data.copy()
            assert not np.allclose(inside, original)
            # Inside the context weights lie on the int8 grid.
            scale = sym(float(np.abs(original).max()))
            np.testing.assert_allclose(
                inside, fake_quantize(original, scale), atol=1e-12
            )
        np.testing.assert_allclose(conv.weight.data, original)

    def test_restored_on_exception(self):
        conv = Conv2d(3, 4, 3, rng=RNG)
        original = conv.weight.data.copy()
        qat = QATWeightQuantizer()
        with pytest.raises(RuntimeError):
            with qat.quantized_weights(conv):
                raise RuntimeError("boom")
        np.testing.assert_allclose(conv.weight.data, original)


class TestDetectorConversion:
    def test_quantize_detector_predicts(self):
        det = SSDDetector(tiny_spec(0.5), rng=RNG)
        det.train(True)
        x = RNG.normal(size=(4, 3, 48, 64)) * 0.3 + 0.5
        det.forward(x)  # populate BN stats
        det.eval()
        qdet = quantize_detector(det, x)
        out = qdet.predict(x[:2], score_threshold=0.05)
        assert len(out) == 2
        # Original detector untouched (still has live BatchNorms).
        from repro.nn.norm import BatchNorm2d as BN

        has_bn = any(isinstance(m, BN) for _, m in _walk(det))
        assert has_bn

    def test_outputs_close_to_float(self):
        det = SSDDetector(tiny_spec(0.5), rng=RNG)
        det.train(True)
        x = RNG.normal(size=(4, 3, 48, 64)) * 0.3 + 0.5
        det.forward(x)
        det.eval()
        conf_f, _ = det.forward(x)
        qdet = quantize_detector(det, x)
        conf_q, _ = qdet.forward(x)
        # int8 simulation tracks float logits closely on calibration data.
        assert np.median(np.abs(conf_q - conf_f)) < 0.5

    def test_empty_calibration_rejected(self):
        det = SSDDetector(tiny_spec(0.5), rng=RNG)
        with pytest.raises(QuantizationError):
            quantize_detector(det, np.zeros((0, 3, 48, 64)))


def _walk(module):
    for name, child in module._children.items():
        yield name, child
        yield from _walk(child)
