"""Training-loop tests: the detector actually learns on synthetic data."""

import numpy as np
import pytest

from repro.datasets import make_openimages_like
from repro.evaluation import evaluate_map
from repro.quantization import QATWeightQuantizer
from repro.vision import SSDDetector, tiny_spec
from repro.vision.training import (
    Trainer,
    TrainingConfig,
    paper_finetune_config,
    paper_pretrain_config,
)


@pytest.fixture(scope="module")
def small_dataset():
    return make_openimages_like(32, seed=0)


class TestConfigs:
    def test_paper_pretrain(self):
        cfg = paper_pretrain_config()
        assert cfg.learning_rate == 8e-4
        assert cfg.decay_rate == 0.95
        assert cfg.decay_epochs == 24

    def test_paper_finetune(self):
        cfg = paper_finetune_config()
        assert cfg.learning_rate == 1e-4
        assert cfg.decay_epochs == 10


class TestTrainer:
    def test_loss_decreases(self, small_dataset):
        det = SSDDetector(tiny_spec(0.5), rng=np.random.default_rng(0))
        cfg = TrainingConfig(epochs=4, batch_size=8, augment_prob=0.0, seed=0)
        log = Trainer(det, cfg).fit(small_dataset)
        assert len(log.epoch_losses) == 4
        assert log.epoch_losses[-1] < log.epoch_losses[0] * 0.7

    def test_training_improves_map(self, small_dataset):
        det = SSDDetector(tiny_spec(0.5), rng=np.random.default_rng(0))

        def measure():
            preds = []
            for start in range(0, len(small_dataset), 16):
                imgs = np.stack(
                    [
                        small_dataset[i].image
                        for i in range(start, min(start + 16, len(small_dataset)))
                    ]
                )
                preds.extend(det.predict(imgs, score_threshold=0.2))
            return evaluate_map(
                preds,
                [d.boxes for d in small_dataset],
                [d.labels for d in small_dataset],
            ).map_score

        before = measure()
        # Enough steps to clearly lift training-set mAP off the floor;
        # augmentation off so the model can overfit the small set quickly.
        cfg = TrainingConfig(epochs=14, batch_size=4, augment_prob=0.0, seed=1)
        Trainer(det, cfg).fit(small_dataset)
        after = measure()
        assert after > before + 0.05  # training-set mAP clearly improves

    def test_qat_training_runs(self, small_dataset):
        det = SSDDetector(tiny_spec(0.5), rng=np.random.default_rng(0))
        cfg = TrainingConfig(epochs=1, batch_size=8, augment_prob=0.0)
        log = Trainer(det, cfg, qat=QATWeightQuantizer()).fit(small_dataset)
        assert np.isfinite(log.final_loss)

    def test_model_in_eval_mode_after_fit(self, small_dataset):
        det = SSDDetector(tiny_spec(0.5), rng=np.random.default_rng(0))
        Trainer(det, TrainingConfig(epochs=1, batch_size=16)).fit(small_dataset)
        assert not det.training
