"""Tests for repro.world."""

import pytest

from repro.errors import WorldError
from repro.geometry.shapes import AABB, Circle
from repro.geometry.vec import Vec2
from repro.world import (
    ObjectClass,
    Obstacle,
    Room,
    SceneObject,
    cluttered_room,
    paper_object_layout,
    paper_room,
)
from repro.world.objects import OBJECT_DIMENSIONS


class TestRoom:
    def test_dimensions(self):
        room = Room(6.5, 5.5)
        assert room.width == 6.5
        assert room.length == 5.5
        assert room.center() == Vec2(3.25, 2.75)

    def test_bad_dimensions(self):
        with pytest.raises(WorldError):
            Room(0.0, 5.0)

    def test_is_free(self):
        room = Room(4.0, 3.0)
        assert room.is_free(Vec2(2.0, 1.5))
        assert not room.is_free(Vec2(-0.1, 1.0))
        assert not room.is_free(Vec2(3.95, 1.0), margin=0.1)

    def test_obstacle_blocks(self):
        obs = Obstacle(AABB(1.0, 1.0, 2.0, 2.0), name="box")
        room = Room(4.0, 3.0, [obs])
        assert not room.is_free(Vec2(1.5, 1.5))
        assert room.is_free(Vec2(0.5, 0.5))
        # Margin keeps clearance from the obstacle boundary too.
        assert not room.is_free(Vec2(0.95, 1.5), margin=0.1)

    def test_obstacle_outside_rejected(self):
        with pytest.raises(WorldError):
            Room(2.0, 2.0, [Obstacle(AABB(1.5, 1.5, 3.0, 3.0))])

    def test_clearance(self):
        room = Room(4.0, 4.0)
        assert room.clearance(Vec2(2.0, 2.0)) == pytest.approx(2.0)
        assert room.clearance(Vec2(-1.0, 2.0)) == 0.0

    def test_segments_count(self):
        room = Room(4.0, 3.0, [Obstacle(Circle(Vec2(2.0, 1.5), 0.3))])
        assert len(room.all_segments()) == 4 + 16


class TestLayouts:
    def test_paper_room(self):
        room = paper_room()
        assert room.width == 6.5
        assert room.length == 5.5

    def test_paper_objects(self):
        objs = paper_object_layout()
        assert len(objs) == 6
        bottles = [o for o in objs if o.object_class is ObjectClass.BOTTLE]
        cans = [o for o in objs if o.object_class is ObjectClass.TIN_CAN]
        assert len(bottles) == 3 and len(cans) == 3
        room = paper_room()
        for obj in objs:
            assert room.is_free(obj.position)
        names = [o.name for o in objs]
        assert len(set(names)) == 6
        # Two near the centre, four near the corners.
        center = room.center()
        near_center = [o for o in objs if o.position.distance_to(center) < 1.0]
        assert len(near_center) == 2

    def test_cluttered_room_navigable(self):
        room = cluttered_room(n_obstacles=4, seed=5)
        assert len(room.obstacles) == 4
        # Start cell stays free.
        assert room.is_free(Vec2(1.0, 1.0), margin=0.1)

    def test_cluttered_room_reproducible(self):
        a = cluttered_room(n_obstacles=3, seed=9)
        b = cluttered_room(n_obstacles=3, seed=9)
        for oa, ob in zip(a.obstacles, b.obstacles):
            assert type(oa.shape) is type(ob.shape)


class TestSceneObject:
    def test_dimensions(self):
        bottle = SceneObject(ObjectClass.BOTTLE, Vec2(1.0, 1.0))
        assert bottle.height_m == OBJECT_DIMENSIONS[ObjectClass.BOTTLE][0]
        assert bottle.height_m > SceneObject(
            ObjectClass.TIN_CAN, Vec2(0.0, 0.0)
        ).height_m

    def test_auto_name(self):
        obj = SceneObject(ObjectClass.TIN_CAN, Vec2(1.0, 2.0))
        assert "tin_can" in obj.name

    def test_label_roundtrip(self):
        for cls in ObjectClass:
            assert ObjectClass.from_label_id(cls.label_id) is cls
        with pytest.raises(ValueError):
            ObjectClass.from_label_id(99)
