"""Smoke tests of the experiment regenerators at minimal scale."""

import numpy as np
import pytest

from repro.experiments import SMOKE_SCALE
from repro.experiments.config import quick
from repro.experiments import fig3, fig5, fig6, table2, table3, table4
from repro.experiments.reporting import ascii_series, ascii_table

TINY = quick(SMOKE_SCALE, n_runs=1, flight_time_s=30.0)


class TestReporting:
    def test_ascii_table(self):
        out = ascii_table(["a", "bb"], [["1", "22"], ["333", "4"]], title="t")
        lines = out.split("\n")
        assert lines[0] == "t"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_ascii_table_validates(self):
        with pytest.raises(ValueError):
            ascii_table(["a"], [["1", "2"]])

    def test_ascii_series(self):
        out = ascii_series([0.0, 1.0, 2.0], [0.0, 0.5, 1.0], label="cov")
        assert "cov" in out


class TestTable2:
    def test_runs_and_formats(self):
        result = table2.run(TINY)
        text = table2.format_table(result)
        assert "MMAC" in text
        assert len(result.rows) == 3


class TestTable4:
    def test_runs_and_formats(self):
        result = table4.run(TINY)
        text = table4.format_table(result)
        assert "Motors" in text
        assert result.breakdown.total_w > 7.0


class TestFlightExperiments:
    def test_fig3(self):
        result = fig3.run(TINY)
        assert set(result.grids) == {
            "pseudo-random",
            "wall-following",
            "spiral",
            "rotate-and-measure",
        }
        text = fig3.format_maps(result)
        assert "coverage" in text

    def test_fig5(self):
        result = fig5.run(TINY, speeds=(0.5,))
        assert len(result.coverage) == 4
        assert all(0.0 <= v <= 1.0 for v in result.coverage.values())

    def test_fig5_coverage_column_unchanged_by_normalization(self):
        # Fig. 5 aggregates the campaign's `coverage` column. On the
        # paper room every grid cell is reachable (pinned: 143 of 143),
        # so the reachable-free-space normalization must reproduce the
        # historical visited/n_cells values exactly -- the figure's
        # regression values survive the metric fix untouched.
        from repro.sim import Campaign, get_scenario, run_campaign

        campaign = Campaign(
            name="fig5-pin",
            scenarios=(get_scenario("paper-room"),),
            policies=("pseudo-random",),
            speeds=(0.5,),
            n_runs=2,
            flight_time_s=20.0,
            kind="explore",
            seed=100,
        )
        result = run_campaign(campaign)
        cols = result.columns()
        assert cols["coverage"] == cols["coverage_raw"]
        assert cols["reachable_cells"] == [143, 143]
        assert cols["grid_cells"] == [143, 143]

    def test_table3(self):
        result = table3.run(TINY, widths=("1.0",), speeds=(0.5,))
        assert len(result.rates) == 4
        text = table3.format_table(result)
        assert "pseudo-random" in text

    def test_fig6(self):
        result = fig6.run(TINY)
        assert result.mean_coverage.shape == result.grid_times.shape
        assert (np.diff(result.mean_coverage) >= -1e-9).all()
        text = fig6.format_figure(result)
        assert "coverage" in text
