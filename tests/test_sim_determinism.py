"""Determinism regression tests for the seeded mission pipeline.

The contract: identical seeds produce bit-identical ``SearchResult``
outcomes (events, coverage, collisions) whether missions run serially or
through the multiprocessing runner; distinct seeds produce different
trajectories.
"""

import numpy as np

from repro.mission.closed_loop import ClosedLoopMission
from repro.mission.detector_model import (
    CalibratedDetectorModel,
    paper_operating_points,
)
from repro.mission.explorer import ExplorationMission
from repro.policies import PolicyConfig, PseudoRandomPolicy
from repro.sim import Campaign, get_scenario, run_campaign
from repro.world import paper_object_layout, paper_room


def search_mission(flight_time=20.0):
    op = paper_operating_points()["1.0"]
    return ClosedLoopMission(
        paper_room(),
        paper_object_layout(),
        PseudoRandomPolicy(PolicyConfig(cruise_speed=0.5)),
        CalibratedDetectorModel(op),
        op,
        flight_time_s=flight_time,
    )


def tiny_campaign(seed=11):
    # 30 s flights: long enough for the pseudo-random policy to make its
    # first randomized turn (~9 s in), so distinct streams can diverge.
    return Campaign(
        name="determinism",
        scenarios=(get_scenario("paper-room"), get_scenario("apartment")),
        policies=("pseudo-random",),
        speeds=(0.5,),
        n_runs=2,
        flight_time_s=30.0,
        seed=seed,
    )


class TestMissionSeeding:
    def test_identical_int_seed_bit_identical(self):
        a = search_mission().run(seed=123)
        b = search_mission().run(seed=123)
        assert a.events == b.events
        assert a.coverage == b.coverage
        assert a.collisions == b.collisions
        assert a.detection_rate == b.detection_rate

    def test_identical_seed_sequence_bit_identical(self):
        a = search_mission().run(seed=np.random.SeedSequence(5, spawn_key=(2,)))
        b = search_mission().run(seed=np.random.SeedSequence(5, spawn_key=(2,)))
        assert a.events == b.events
        assert a.coverage == b.coverage

    def test_reusing_one_seed_sequence_instance_is_stable(self):
        # Regression: spawning streams must not mutate the caller's
        # sequence, or the second run with the same instance diverges.
        seq = np.random.SeedSequence(5, spawn_key=(2,))
        a = search_mission().run(seed=seq)
        b = search_mission().run(seed=seq)
        assert seq.n_children_spawned == 0
        assert a.events == b.events
        assert a.series.coverage.tolist() == b.series.coverage.tolist()

    def test_distinct_seeds_differ(self):
        a = search_mission().run(seed=1)
        b = search_mission().run(seed=2)
        # Coverage traces are continuous-valued; equality would mean the
        # trajectories coincide, which independent streams rule out.
        assert a.series.coverage.tolist() != b.series.coverage.tolist()

    def test_exploration_deterministic(self):
        def fly(seed):
            return ExplorationMission(
                paper_room(),
                PseudoRandomPolicy(PolicyConfig(cruise_speed=0.5)),
                flight_time_s=20.0,
            ).run(seed=seed)

        assert fly(9).coverage == fly(9).coverage
        assert fly(9).series.coverage.tolist() != fly(10).series.coverage.tolist()


class TestCampaignDeterminism:
    def test_serial_rerun_identical(self):
        first = run_campaign(tiny_campaign())
        second = run_campaign(tiny_campaign())
        assert first.records == second.records
        assert first.campaign_hash == second.campaign_hash

    def test_parallel_matches_serial_bit_identical(self):
        serial = run_campaign(tiny_campaign(), workers=None)
        pooled = run_campaign(tiny_campaign(), workers=2)
        assert serial.records == pooled.records
        assert serial.to_json() == pooled.to_json()

    def test_distinct_campaign_seeds_differ(self):
        a = run_campaign(tiny_campaign(seed=11))
        b = run_campaign(tiny_campaign(seed=12))
        assert [r.series_coverage for r in a.records] != [
            r.series_coverage for r in b.records
        ]

    def test_runs_within_campaign_are_independent(self):
        result = run_campaign(tiny_campaign())
        paper = [r for r in result.records if r.scenario == "paper-room"]
        assert paper[0].series_coverage != paper[1].series_coverage

    def test_progress_callback_sees_every_mission(self):
        seen = []
        result = run_campaign(
            tiny_campaign(), progress=lambda done, total, rec: seen.append((done, total))
        )
        assert seen == [(i + 1, len(result)) for i in range(len(result))]
