"""Tests for boxes, anchors, codec, NMS and matching."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import ShapeError
from repro.vision import (
    AnchorLevel,
    BoxCodec,
    center_to_corner,
    corner_to_center,
    generate_anchors,
    iou_matrix,
    match_anchors,
    non_max_suppression,
)
from repro.vision.matching import hard_negative_mask


def boxes_strategy():
    def make(vals):
        x0, y0, w, h = vals
        return [x0, y0, x0 + w, y0 + h]

    coord = st.floats(0.0, 0.8)
    size = st.floats(0.05, 0.2)
    return st.tuples(coord, coord, size, size).map(make)


class TestConversions:
    def test_roundtrip(self):
        boxes = np.array([[0.1, 0.2, 0.5, 0.8], [0.0, 0.0, 1.0, 1.0]])
        np.testing.assert_allclose(center_to_corner(corner_to_center(boxes)), boxes)

    def test_shapes_checked(self):
        with pytest.raises(ShapeError):
            corner_to_center(np.zeros((3, 5)))


class TestIoU:
    def test_identical(self):
        a = np.array([[0.1, 0.1, 0.5, 0.5]])
        assert iou_matrix(a, a)[0, 0] == pytest.approx(1.0)

    def test_disjoint(self):
        a = np.array([[0.0, 0.0, 0.2, 0.2]])
        b = np.array([[0.5, 0.5, 0.8, 0.8]])
        assert iou_matrix(a, b)[0, 0] == 0.0

    def test_half_overlap(self):
        a = np.array([[0.0, 0.0, 0.2, 0.2]])
        b = np.array([[0.1, 0.0, 0.3, 0.2]])
        assert iou_matrix(a, b)[0, 0] == pytest.approx(1.0 / 3.0)

    @given(st.lists(boxes_strategy(), min_size=1, max_size=6))
    def test_symmetry_and_bounds(self, box_list):
        boxes = np.array(box_list)
        m = iou_matrix(boxes, boxes)
        assert np.all(m >= 0.0) and np.all(m <= 1.0 + 1e-9)
        np.testing.assert_allclose(m, m.T)
        np.testing.assert_allclose(np.diag(m), 1.0)


class TestAnchors:
    def test_count_and_layout(self):
        levels = [
            AnchorLevel((2, 3), 0.3, (1.0, 0.5)),
            AnchorLevel((1, 1), 0.6, (1.0,)),
        ]
        anchors = generate_anchors(levels)
        assert anchors.shape == (2 * 3 * 2 + 1, 4)
        # First anchor sits in the first cell's centre.
        assert anchors[0, 0] == pytest.approx(1.0 / 6.0)
        assert anchors[0, 1] == pytest.approx(0.25)

    def test_aspect_ratios(self):
        anchors = generate_anchors([AnchorLevel((1, 1), 0.4, (1.0, 0.25, 4.0))])
        # ratio = w/h; areas are equal.
        areas = anchors[:, 2] * anchors[:, 3]
        np.testing.assert_allclose(areas, areas[0])
        assert anchors[1, 2] < anchors[1, 3]  # tall anchor
        assert anchors[2, 2] > anchors[2, 3]  # wide anchor

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            generate_anchors([])


class TestBoxCodec:
    @given(st.lists(boxes_strategy(), min_size=1, max_size=5))
    def test_encode_decode_roundtrip(self, box_list):
        codec = BoxCodec()
        boxes = np.array(box_list)
        anchors = corner_to_center(
            np.tile(np.array([[0.2, 0.2, 0.8, 0.8]]), (boxes.shape[0], 1))
        )
        decoded = codec.decode(codec.encode(boxes, anchors), anchors)
        np.testing.assert_allclose(decoded, np.clip(boxes, 0.0, 1.0), atol=1e-9)

    def test_zero_offsets_give_anchor(self):
        codec = BoxCodec()
        anchors = np.array([[0.5, 0.5, 0.2, 0.4]])
        decoded = codec.decode(np.zeros((1, 4)), anchors)
        np.testing.assert_allclose(decoded, center_to_corner(anchors))

    def test_decode_clips_garbage(self):
        codec = BoxCodec()
        anchors = np.array([[0.5, 0.5, 0.2, 0.4]])
        decoded = codec.decode(np.full((1, 4), 1e6), anchors)
        assert np.all(decoded >= 0.0) and np.all(decoded <= 1.0)
        assert np.isfinite(decoded).all()


class TestNMS:
    def test_keeps_best(self):
        boxes = np.array(
            [[0.1, 0.1, 0.5, 0.5], [0.12, 0.12, 0.52, 0.52], [0.7, 0.7, 0.9, 0.9]]
        )
        scores = np.array([0.9, 0.8, 0.7])
        keep = non_max_suppression(boxes, scores, iou_threshold=0.5)
        assert list(keep) == [0, 2]

    def test_empty(self):
        keep = non_max_suppression(np.zeros((0, 4)), np.zeros(0))
        assert keep.size == 0

    def test_max_outputs(self):
        boxes = np.array([[0.0, 0.0, 0.1, 0.1], [0.5, 0.5, 0.6, 0.6], [0.8, 0.8, 0.9, 0.9]])
        scores = np.array([0.9, 0.8, 0.7])
        keep = non_max_suppression(boxes, scores, max_outputs=2)
        assert len(keep) == 2

    def test_idempotent(self):
        rng = np.random.default_rng(0)
        x0 = rng.uniform(0, 0.7, size=(20, 2))
        boxes = np.concatenate([x0, x0 + rng.uniform(0.05, 0.3, size=(20, 2))], axis=1)
        scores = rng.uniform(size=20)
        keep1 = non_max_suppression(boxes, scores)
        keep2 = non_max_suppression(boxes[keep1], scores[keep1])
        assert len(keep2) == len(keep1)

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            non_max_suppression(np.zeros((1, 4)), np.zeros(1), iou_threshold=2.0)


class TestMatching:
    def test_empty_gt_all_background(self):
        anchors = np.array([[0.0, 0.0, 0.2, 0.2], [0.5, 0.5, 0.7, 0.7]])
        m = match_anchors(anchors, np.zeros((0, 4)), np.zeros(0, dtype=int))
        assert m.num_positives == 0
        assert np.all(m.labels == 0)

    def test_best_anchor_forced(self):
        # GT overlapping nothing well still claims its best anchor.
        anchors = np.array([[0.0, 0.0, 0.1, 0.1], [0.8, 0.8, 1.0, 1.0]])
        gt = np.array([[0.05, 0.05, 0.3, 0.3]])
        m = match_anchors(anchors, gt, np.array([1]))
        assert m.num_positives == 1
        assert m.labels[0] == 2  # class 1 -> label 2

    def test_high_iou_positive(self):
        anchors = np.array([[0.1, 0.1, 0.5, 0.5]])
        gt = np.array([[0.1, 0.1, 0.52, 0.52]])
        m = match_anchors(anchors, gt, np.array([0]))
        assert m.labels[0] == 1
        np.testing.assert_allclose(m.matched_boxes[0], gt[0])

    def test_ignore_band(self):
        # Build an anchor with IoU strictly between neg and pos thresholds
        # against the gt, while another anchor takes the force-match.
        anchors = np.array([[0.0, 0.0, 0.4, 0.4], [0.5, 0.5, 0.9, 0.9]])
        gt = np.array([[0.5, 0.5, 0.9, 0.9], [0.0, 0.1, 0.4, 0.53]])
        m = match_anchors(anchors, gt, np.array([0, 0]), pos_threshold=0.9, neg_threshold=0.3)
        assert -1 not in m.labels[m.positive_mask]

    def test_validation(self):
        with pytest.raises(ValueError):
            match_anchors(np.zeros((1, 4)), np.zeros((0, 4)), np.zeros(0), 0.3, 0.5)


class TestHardNegatives:
    def test_ratio(self):
        labels = np.array([1, 0, 0, 0, 0, 0, 0, 0])
        loss = np.array([0.0, 5.0, 4.0, 3.0, 2.0, 1.0, 0.5, 0.1])
        mask = hard_negative_mask(labels, loss, neg_pos_ratio=3.0)
        assert mask[0]  # positive always kept
        assert mask[1] and mask[2] and mask[3]  # 3 hardest negatives
        assert not mask[7]

    def test_zero_positives_keeps_one(self):
        labels = np.zeros(5, dtype=int)
        loss = np.array([0.1, 0.9, 0.3, 0.2, 0.4])
        mask = hard_negative_mask(labels, loss)
        assert mask.sum() == 1
        assert mask[1]
