"""Static-typing gate: the determinism-critical packages stay clean.

Runs mypy (when available) with the repo's ``mypy.ini`` over the
packages the config puts under ``disallow_untyped_defs``:
``repro.exec``, ``repro.seeding``, ``repro.schemas`` and ``repro.lint``.
CI installs mypy; environments without it skip rather than fail, so the
tier-1 suite never depends on an optional tool.

A lightweight AST check backs the mypy run: every function in the
strict packages must carry a return annotation and annotate every
parameter. That subset of ``disallow_untyped_defs`` runs everywhere,
mypy or not, so annotation regressions cannot slip through a
mypy-less environment.
"""

import ast
import os
import shutil
import subprocess
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")

#: Paths (relative to src/) the mypy config holds to disallow_untyped_defs.
STRICT_TARGETS = (
    "repro/exec",
    "repro/lint",
    "repro/seeding.py",
    "repro/schemas.py",
)


def _strict_files():
    for target in STRICT_TARGETS:
        path = os.path.join(SRC, target)
        if os.path.isfile(path):
            yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = [d for d in dirs if d != "__pycache__"]
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def _unannotated_defs(path):
    """(lineno, name, what) for each annotation gap in one file."""
    with open(path, encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=path)
    gaps = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if node.returns is None:
            gaps.append((node.lineno, node.name, "return"))
        args = node.args
        params = args.posonlyargs + args.args + args.kwonlyargs
        for arg in params:
            if arg.annotation is None and arg.arg not in ("self", "cls"):
                gaps.append((node.lineno, node.name, arg.arg))
        for star in (args.vararg, args.kwarg):
            if star is not None and star.annotation is None:
                gaps.append((node.lineno, node.name, "*" + star.arg))
    return gaps


def test_strict_packages_fully_annotated():
    """AST-level disallow_untyped_defs, independent of mypy."""
    failures = []
    for path in _strict_files():
        rel = os.path.relpath(path, REPO_ROOT)
        for lineno, name, what in _unannotated_defs(path):
            failures.append(f"{rel}:{lineno}: {name}() missing annotation: {what}")
    assert not failures, "\n".join(failures)


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_clean():
    """Full mypy run with the committed config over the strict targets."""
    targets = [os.path.join(SRC, t) for t in STRICT_TARGETS]
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            os.path.join(REPO_ROOT, "mypy.ini"),
            *targets,
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
