"""Grid-bucketed Room.is_free / Room.clearance == brute force, bit for bit.

The point-query grid (``accel="auto"``/``"grid"``) gathers conservative
candidate subsets and evaluates the identical elementwise arithmetic, so
its answers must equal the full-array reference path (``accel="none"``)
exactly -- including on the generated 1000+-segment worlds it exists for.
"""

import numpy as np
import pytest

from repro.geometry.vec import Vec2
from repro.sim import generate_scenario
from repro.world.layouts import cluttered_room
from repro.world.room import (
    OBSTACLE_GRID_THRESHOLD,
    POINT_GRID_THRESHOLD,
    Room,
)

MARGINS = (0.0, 0.07, 0.1, 0.35)


def _rooms(width, length, obstacles):
    return (
        Room(width, length, obstacles, accel="none"),
        Room(width, length, obstacles, accel="grid"),
        Room(width, length, obstacles, accel="auto"),
    )


def _assert_equivalent(brute, grid, auto, points):
    for p in points:
        for margin in MARGINS:
            expected = brute.is_free(p, margin=margin)
            assert grid.is_free(p, margin=margin) == expected, (p, margin)
            assert auto.is_free(p, margin=margin) == expected, (p, margin)
        c = brute.clearance(p)
        assert grid.clearance(p) == c, p
        assert auto.clearance(p) == c, p


def _query_points(room, n, seed):
    """Uniform points padded past the walls, plus obstacle-hugging ones."""
    rng = np.random.default_rng(seed)
    pts = [
        Vec2(
            rng.uniform(-0.5, room.width + 0.5),
            rng.uniform(-0.5, room.length + 0.5),
        )
        for _ in range(n)
    ]
    for obs in room.obstacles[:40]:
        seg = obs.segments()[0]
        pts.append(Vec2(seg.a.x + 1e-3, seg.a.y + 1e-3))
        pts.append(seg.a)
    return pts


class TestGeneratedWorlds:
    @pytest.mark.parametrize(
        "family,params",
        [
            ("perfect-maze", {"cols": 24, "rows": 18, "cell_m": 1.0}),
            (
                "cluttered-warehouse",
                {"width": 40.0, "length": 30.0, "aisle": 1.2, "shelf_depth": 0.5, "unit_len": 1.0},
            ),
        ],
    )
    def test_equivalence_on_1000_segment_worlds(self, family, params):
        scenario = generate_scenario(family, params, seed=5)
        spec = scenario.room
        obstacles = [o.build() for o in spec.obstacles]
        brute, grid, auto = _rooms(spec.width, spec.length, obstacles)
        assert len(brute.all_segments()) >= 1000
        assert grid._all_field._grid is not None
        assert auto._all_field._grid is not None
        assert brute._all_field._grid is None
        _assert_equivalent(brute, grid, auto, _query_points(brute, 400, seed=1))


class TestPresetWorlds:
    def test_equivalence_on_dense_clutter(self):
        base = cluttered_room(n_obstacles=40, seed=3, width=30.0, length=30.0)
        brute, grid, auto = _rooms(30.0, 30.0, base.obstacles)
        _assert_equivalent(brute, grid, auto, _query_points(brute, 300, seed=2))

    def test_forced_grid_on_tiny_room(self):
        brute, grid, _ = _rooms(4.0, 3.0, [])
        assert grid._all_field._grid is not None  # forced despite 4 segments
        _assert_equivalent(brute, grid, grid, _query_points(brute, 200, seed=3))


class TestThresholds:
    def test_auto_keeps_small_rooms_on_reference_path(self):
        room = Room(6.5, 5.5, accel="auto")
        assert room._all_field._grid is None
        assert room._obstacle_index is None

    def test_auto_activates_above_thresholds(self):
        scenario = generate_scenario("cluttered-warehouse", {}, seed=1)
        room = scenario.build_room()
        assert len(room.obstacles) >= OBSTACLE_GRID_THRESHOLD
        assert len(room.all_segments()) >= POINT_GRID_THRESHOLD
        assert room._all_field._grid is not None
        assert room._obstacle_index is not None

    def test_none_disables_everything(self):
        scenario = generate_scenario("cluttered-warehouse", {}, seed=1)
        spec = scenario.room
        room = Room(spec.width, spec.length, [o.build() for o in spec.obstacles], accel="none")
        assert room._all_field._grid is None
        assert room._obstacle_field._grid is None
        assert room._obstacle_index is None
