"""Unit tests for the four exploration policies."""

import math

import pytest

from repro.drone.controller import SetPoint
from repro.drone.state_estimator import EstimatedState
from repro.errors import PolicyError
from repro.geometry.vec import Vec2
from repro.policies import (
    POLICY_NAMES,
    PolicyConfig,
    PseudoRandomPolicy,
    RotateAndMeasurePolicy,
    SpiralPolicy,
    WallFollowingPolicy,
    make_policy,
)
from repro.sensors.multiranger import RangerReading


def reading(front=4.0, back=4.0, left=4.0, right=4.0):
    return RangerReading(front=front, back=back, left=left, right=right, up=4.0)


def estimate(x=0.0, y=0.0, heading=0.0):
    return EstimatedState(
        position=Vec2(x, y), heading=heading, vx_body=0.0, vy_body=0.0,
        yaw_rate=0.0, time=0.0,
    )


class TestRegistry:
    def test_all_names(self):
        assert len(POLICY_NAMES) == 4
        for name in POLICY_NAMES:
            policy = make_policy(name)
            assert policy.name == name

    def test_unknown_name(self):
        with pytest.raises(PolicyError):
            make_policy("slam")


class TestConfig:
    def test_validation(self):
        with pytest.raises(PolicyError):
            PolicyConfig(cruise_speed=0.0)
        with pytest.raises(PolicyError):
            PolicyConfig(obstacle_threshold=-1.0)
        with pytest.raises(PolicyError):
            PolicyConfig(turn_rate=0.0)


class TestBaseBehaviour:
    def test_update_before_reset_raises(self):
        policy = PseudoRandomPolicy()
        with pytest.raises(PolicyError):
            policy.update(reading(), estimate())


class TestPseudoRandom:
    def test_cruises_when_clear(self):
        policy = PseudoRandomPolicy(PolicyConfig(cruise_speed=0.5))
        policy.reset(0)
        sp = policy.update(reading(front=3.0), estimate())
        assert sp.forward == 0.5
        assert sp.yaw_rate == 0.0

    def test_turns_at_obstacle(self):
        policy = PseudoRandomPolicy(PolicyConfig(cruise_speed=0.5))
        policy.reset(0)
        sp = policy.update(reading(front=0.8), estimate())
        assert sp.forward == 0.0
        assert abs(sp.yaw_rate) > 0.0
        assert policy.turning

    def test_turn_magnitude_at_least_90(self):
        # The commanded turn target must be >= 90 deg away from the start.
        for seed in range(20):
            policy = PseudoRandomPolicy()
            policy.reset(seed)
            policy.update(reading(front=0.5), estimate(heading=0.0))
            assert policy._turn_target is not None
            assert abs(policy._turn_target) >= math.pi / 2 - policy.config.heading_tolerance

    def test_turn_completes(self):
        policy = PseudoRandomPolicy()
        policy.reset(3)
        policy.update(reading(front=0.5), estimate(heading=0.0))
        target = policy._turn_target
        sp = policy.update(reading(front=0.5), estimate(heading=target))
        assert not policy.turning
        assert sp.yaw_rate == 0.0

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            PseudoRandomPolicy(min_turn_deg=200.0)


class TestWallFollowing:
    def test_acquire_flies_forward(self):
        policy = WallFollowingPolicy()
        policy.reset(0)
        sp = policy.update(reading(front=4.0), estimate())
        assert sp.forward > 0.0
        assert policy.state_name == "acquire"

    def test_aligns_at_wall(self):
        policy = WallFollowingPolicy()
        policy.reset(0)
        policy.update(reading(front=0.6), estimate())
        assert policy.turning
        assert policy.state_name == "align"

    def test_follow_corrects_distance(self):
        policy = WallFollowingPolicy()
        policy.reset(0)
        policy._state = policy._state.__class__("follow")
        # Too far from the right wall -> move right (negative side).
        sp = policy.update(reading(front=4.0, right=1.0), estimate())
        assert sp.side < 0.0
        # Too close -> move left.
        sp = policy.update(reading(front=4.0, right=0.2), estimate())
        assert sp.side > 0.0

    def test_left_side_variant(self):
        policy = WallFollowingPolicy(follow_side="left")
        policy.reset(0)
        policy._state = policy._state.__class__("follow")
        sp = policy.update(reading(front=4.0, left=1.0), estimate())
        assert sp.side > 0.0

    def test_bad_side(self):
        with pytest.raises(ValueError):
            WallFollowingPolicy(follow_side="up")


class TestSpiral:
    def test_starts_at_wall_distance(self):
        policy = SpiralPolicy()
        policy.reset(0)
        assert policy.target_distance == policy.config.wall_distance
        assert policy.inward

    def test_lap_increases_distance(self):
        policy = SpiralPolicy()
        policy.reset(0)
        d0 = policy.target_distance
        policy._complete_lap()
        assert policy.target_distance == pytest.approx(d0 + policy.step)
        assert policy.lap == 1

    def test_reverses_at_max(self):
        policy = SpiralPolicy(max_distance=1.0)
        policy.reset(0)
        policy._complete_lap()  # 0.5 -> 1.0
        assert policy.target_distance == pytest.approx(1.0)
        policy._complete_lap()  # would exceed -> reverse
        assert not policy.inward
        policy._complete_lap()
        assert policy.target_distance == pytest.approx(0.5)

    def test_restarts_at_perimeter(self):
        policy = SpiralPolicy(max_distance=1.0)
        policy.reset(0)
        for _ in range(6):
            policy._complete_lap()
        assert policy.target_distance >= policy.config.wall_distance
        assert policy.inward in (True, False)


class TestRotateAndMeasure:
    def test_scan_spins(self):
        policy = RotateAndMeasurePolicy()
        policy.reset(0)
        sp = policy.update(reading(), estimate(heading=0.0))
        assert policy.phase_name == "scan"
        assert sp.yaw_rate > 0.0
        assert sp.forward == 0.0

    def test_scan_records_8_samples_then_goes(self):
        policy = RotateAndMeasurePolicy()
        policy.reset(0)
        heading = 0.0
        # Walk the heading through the eight 45 deg sample points.
        for k in range(40):
            policy.update(reading(front=2.0 + 0.1 * (k % 8)), estimate(heading=heading))
            if policy.phase_name == "go":
                break
            heading += math.pi / 8.0
        assert policy.phase_name == "go"

    def test_go_stops_at_obstacle(self):
        policy = RotateAndMeasurePolicy()
        policy.reset(0)
        # Force GO phase directly.
        policy._phase = policy._phase.__class__("go")
        policy._leg_start = Vec2(0.0, 0.0)
        policy._leg_length = 2.0
        policy._turn_target = None
        sp = policy.update(reading(front=0.5), estimate())
        assert policy.phase_name == "scan"
        assert sp.forward == 0.0

    def test_bad_leg(self):
        with pytest.raises(ValueError):
            RotateAndMeasurePolicy(max_leg_m=0.0)
