"""Numerical gradient checks for every layer and loss."""

import numpy as np
import pytest

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    GlobalAvgPool2d,
    Linear,
    ReLU,
    ReLU6,
    Sequential,
    smooth_l1_loss,
    softmax_cross_entropy,
)
from repro.vision.mobilenetv2 import InvertedResidual

RNG = np.random.default_rng(42)


def numerical_grad(f, x, eps=1e-6):
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        fp = f()
        x[idx] = orig - eps
        fm = f()
        x[idx] = orig
        g[idx] = (fp - fm) / (2 * eps)
        it.iternext()
    return g


def assert_grads_match(layer, x, tol=1e-6):
    out = layer.forward(x.copy())
    r = RNG.normal(size=out.shape)

    def loss():
        return float((layer.forward(x) * r).sum())

    gx_num = numerical_grad(loss, x)
    layer.zero_grad()
    layer.forward(x)
    gx = layer.backward(r)
    np.testing.assert_allclose(gx, gx_num, atol=tol)
    for _name, p in layer.named_parameters():
        layer.zero_grad()
        layer.forward(x)
        layer.backward(r)
        analytic = p.grad.copy()
        numeric = numerical_grad(loss, p.data)
        np.testing.assert_allclose(analytic, numeric, atol=tol)


class TestLayerGradients:
    def test_conv2d(self):
        x = RNG.normal(size=(2, 3, 6, 7))
        assert_grads_match(Conv2d(3, 4, 3, stride=2, padding=1, rng=RNG), x)

    def test_conv2d_1x1(self):
        x = RNG.normal(size=(2, 4, 3, 3))
        assert_grads_match(Conv2d(4, 6, 1, rng=RNG), x)

    def test_depthwise(self):
        x = RNG.normal(size=(2, 3, 6, 7))
        assert_grads_match(DepthwiseConv2d(3, 3, stride=2, padding=1, rng=RNG), x)

    def test_batchnorm_train(self):
        x = RNG.normal(size=(3, 4, 3, 3))
        bn = BatchNorm2d(4)
        bn.train(True)
        assert_grads_match(bn, x, tol=1e-5)

    def test_batchnorm_eval(self):
        x = RNG.normal(size=(3, 4, 3, 3))
        bn = BatchNorm2d(4)
        bn.forward(RNG.normal(size=(3, 4, 3, 3)))  # seed running stats
        bn.eval()
        assert_grads_match(bn, x)

    def test_relu_family(self):
        x = RNG.normal(size=(2, 3, 4, 4)) * 4.0
        assert_grads_match(ReLU(), x)
        assert_grads_match(ReLU6(), x)

    def test_global_avg_pool(self):
        x = RNG.normal(size=(2, 3, 4, 5))
        assert_grads_match(GlobalAvgPool2d(), x)

    def test_linear(self):
        x = RNG.normal(size=(3, 5))
        assert_grads_match(Linear(5, 4, rng=RNG), x)

    @staticmethod
    def _nudge_off_kinks(block):
        # Zero-padded/ReLU-zeroed patches produce *exactly* zero
        # pre-activations, where central differences straddle the ReLU6
        # kink and disagree with the one-sided analytic gradient. Shifting
        # the BN betas moves those points off the kink; it changes nothing
        # about the correctness property being checked.
        for name, p in block.named_parameters():
            if name.endswith("beta"):
                p.data += 0.05

    def test_inverted_residual_with_skip(self):
        x = RNG.normal(size=(2, 4, 6, 6))
        block = InvertedResidual(4, 4, stride=1, expand_ratio=2, rng=RNG)
        block.eval()  # avoid BN running-stat noise in the numeric loss
        self._nudge_off_kinks(block)
        assert_grads_match(block, x, tol=1e-5)

    def test_inverted_residual_stride2(self):
        x = RNG.normal(size=(2, 4, 6, 6))
        block = InvertedResidual(4, 8, stride=2, expand_ratio=2, rng=RNG)
        block.eval()
        self._nudge_off_kinks(block)
        assert_grads_match(block, x, tol=1e-5)


class TestLossGradients:
    def test_cross_entropy(self):
        logits = RNG.normal(size=(4, 7, 3))
        labels = RNG.integers(0, 3, size=(4, 7))
        weights = RNG.uniform(size=(4, 7))
        _, g = softmax_cross_entropy(logits, labels, weights=weights)
        gn = numerical_grad(
            lambda: softmax_cross_entropy(logits, labels, weights=weights)[0], logits
        )
        np.testing.assert_allclose(g, gn, atol=1e-7)

    def test_smooth_l1(self):
        pred = RNG.normal(size=(4, 6)) * 2.0
        target = RNG.normal(size=(4, 6))
        weights = (RNG.uniform(size=(4, 6)) > 0.5).astype(float)
        _, g = smooth_l1_loss(pred, target, weights=weights)
        gn = numerical_grad(
            lambda: smooth_l1_loss(pred, target, weights=weights)[0], pred
        )
        np.testing.assert_allclose(g, gn, atol=1e-7)

    def test_loss_values(self):
        # Perfect predictions: CE -> ~0 against a one-hot optimum.
        logits = np.full((1, 2, 3), -20.0)
        logits[0, 0, 1] = 20.0
        logits[0, 1, 2] = 20.0
        labels = np.array([[1, 2]])
        loss, _ = softmax_cross_entropy(logits, labels)
        assert loss == pytest.approx(0.0, abs=1e-6)
        loss, _ = smooth_l1_loss(np.ones((2, 2)), np.ones((2, 2)))
        assert loss == 0.0

    def test_shape_errors(self):
        from repro.errors import ShapeError

        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((2, 3)), np.zeros((3,), dtype=int))
        with pytest.raises(ShapeError):
            smooth_l1_loss(np.zeros((2, 2)), np.zeros((2, 3)))
