"""The docs gate runs inside tier-1 too: links resolve, examples pass."""

import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def test_docs_links_and_examples():
    env = dict(os.environ)
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, str(REPO_ROOT / "tools" / "check_docs.py")],
        cwd=str(REPO_ROOT),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"docs check failed:\n{proc.stdout}\n{proc.stderr}"


def test_docs_site_exists():
    for page in ("architecture.md", "scenarios.md", "determinism.md"):
        assert (REPO_ROOT / "docs" / page).is_file(), f"docs/{page} missing"
