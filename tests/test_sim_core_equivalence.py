"""Batched simulation core vs. the scalar reference path.

The vectorized tick loop (batched Multi-ranger casts, block noise draws,
batched camera occlusion, grid-accelerated raycasting, vectorized
free-space queries) must be *bit-identical* to the per-beam / per-draw /
per-object reference path it replaced: same RNG stream consumption, same
IEEE arithmetic, same trajectories, detections and coverage.
"""

import math

import numpy as np
import pytest

from repro.drone.crazyflie import Crazyflie, CrazyflieConfig
from repro.mapping.coverage import CoverageSeries
from repro.mapping.mocap import MotionCaptureTracker
from repro.mapping.occupancy import OccupancyGrid
from repro.mission.closed_loop import ClosedLoopMission
from repro.mission.detector_model import (
    CalibratedDetectorModel,
    DetectorOperatingPoint,
    paper_operating_points,
)
from repro.policies import PolicyConfig
from repro.policies.registry import make_policy
from repro.sensors.camera import CameraIntrinsics
from repro.sim import get_scenario
from repro.world.room import Room
from repro.geometry.vec import Vec2


def build_mission(name, flight_time=12.0, batched=True, accel="auto", op=None):
    scenario = get_scenario(name)
    op = op or paper_operating_points()[scenario.ssd_width]
    policy = make_policy(
        scenario.policy, PolicyConfig(cruise_speed=scenario.cruise_speed)
    )
    room = Room(
        scenario.room.width,
        scenario.room.length,
        [o.build() for o in scenario.room.obstacles],
        accel=accel,
    )
    config = CrazyflieConfig(noisy=scenario.noisy, batched_sensors=batched)
    return ClosedLoopMission(
        room,
        scenario.build_objects(),
        policy,
        CalibratedDetectorModel(op),
        op,
        flight_time_s=flight_time,
        start=scenario.start_position(),
        drone_config=config,
    )


def assert_results_identical(a, b):
    assert a.events == b.events
    assert a.coverage == b.coverage
    assert a.collisions == b.collisions
    assert a.distance_flown_m == b.distance_flown_m
    assert a.frames_processed == b.frames_processed
    assert a.series.times.tolist() == b.series.times.tolist()
    assert a.series.coverage.tolist() == b.series.coverage.tolist()
    assert [(s.time, s.position, s.heading) for s in a.samples] == [
        (s.time, s.position, s.heading) for s in b.samples
    ]


class TestMissionBitIdentity:
    @pytest.mark.parametrize(
        "scenario", ["paper-room", "dense-depot", "apartment", "corridor-maze"]
    )
    def test_batched_equals_reference(self, scenario):
        reference = build_mission(scenario, batched=False, accel="none").run(seed=7)
        batched = build_mission(scenario, batched=True, accel="auto").run(seed=7)
        assert_results_identical(reference, batched)

    def test_batched_equals_reference_noise_free(self):
        scenario = get_scenario("paper-room")
        op = paper_operating_points()["1.0"]
        results = []
        for batched in (False, True):
            policy = make_policy(scenario.policy, PolicyConfig(cruise_speed=0.5))
            config = CrazyflieConfig(noisy=False, batched_sensors=batched)
            results.append(
                ClosedLoopMission(
                    scenario.build_room(),
                    scenario.build_objects(),
                    policy,
                    CalibratedDetectorModel(op),
                    op,
                    flight_time_s=10.0,
                    drone_config=config,
                ).run(seed=3)
            )
        assert_results_identical(results[0], results[1])

    def test_ranger_reading_bit_identical(self):
        room = get_scenario("dense-depot").build_room()
        readings = []
        for batched in (False, True):
            drone = Crazyflie(
                room,
                start=Vec2(1.0, 1.0),
                config=CrazyflieConfig(batched_sensors=batched),
                seed=42,
            )
            reading = drone.read_ranger()
            readings.append(
                (reading.front, reading.back, reading.left, reading.right, reading.up)
            )
        assert readings[0] == readings[1]


class TestFramePacing:
    def _run(self, fps, flight_time):
        op = DetectorOperatingPoint("pacing", fps=fps, map_score=0.5)
        return build_mission("paper-room", flight_time=flight_time, op=op).run(seed=1)

    def test_frame_count_exact_for_inexact_period(self):
        # fps=2.3 has a non-representable period; index-derived frame
        # times must not drift: 33 s * 2.3 fps = 75.9 -> 76 frames
        # (one at t~0, then one per full period).
        result = self._run(fps=2.3, flight_time=33.0)
        assert result.frames_processed == 76

    def test_frame_count_exact_for_exact_period(self):
        # fps=1.6 -> period 0.625 is exactly representable; 30 s covers
        # frame times 0, 0.625, ..., 30.0 (the final tick lands within
        # the 1 ns trigger slack of t=30.0) -> 49 frames.
        result = self._run(fps=1.6, flight_time=30.0)
        assert result.frames_processed == 49

    def test_high_fps_capped_by_tick_rate(self):
        # At 200 fps > 50 Hz control, at most one frame per tick.
        result = self._run(fps=200.0, flight_time=2.0)
        assert result.frames_processed == 100


class TestCoverageSeriesVectorized:
    def _series(self, times, cov):
        s = CoverageSeries()
        for t, c in zip(times, cov):
            s.append(t, c)
        return s

    def test_at_many_matches_at(self):
        s = self._series([0.5, 1.0, 2.5, 7.0], [0.1, 0.2, 0.5, 0.9])
        grid = np.array([0.0, 0.49, 0.5, 0.75, 1.0, 2.5, 3.0, 7.0, 100.0])
        assert s.at_many(grid).tolist() == [s.at(t) for t in grid]

    def test_at_many_empty_series(self):
        s = CoverageSeries()
        assert s.at_many(np.array([0.0, 1.0])).tolist() == [0.0, 0.0]

    def test_mean_and_variance_matches_per_point_loop(self):
        rng = np.random.default_rng(8)
        series = []
        for _ in range(5):
            n = int(rng.integers(1, 30))
            times = np.sort(rng.uniform(0.0, 60.0, size=n))
            cov = np.sort(rng.uniform(0.0, 1.0, size=n))
            series.append(self._series(times, cov))
        grid = np.linspace(0.0, 70.0, 101)
        mean, var = CoverageSeries.mean_and_variance(series, grid)
        ref_values = np.array(
            [[s.at(t) for t in grid] for s in series], dtype=np.float64
        )
        assert mean.tolist() == ref_values.mean(axis=0).tolist()
        assert var.tolist() == ref_values.var(axis=0).tolist()

    def test_mean_and_variance_needs_series(self):
        with pytest.raises(ValueError):
            CoverageSeries.mean_and_variance([], np.array([0.0]))


class TestLeanStateTracking:
    def test_occupancy_incremental_count_matches_mask(self):
        room = get_scenario("paper-room").build_room()
        grid = OccupancyGrid(room)
        rng = np.random.default_rng(0)
        for _ in range(500):
            p = Vec2(rng.uniform(0, room.width), rng.uniform(0, room.length))
            grid.record(p, 0.02)
        assert grid.visited_count() == int(grid.visited_mask.sum())
        assert grid.coverage() == grid.visited_count() / grid.n_cells
        assert grid.occupancy_time.sum() == pytest.approx(500 * 0.02)

    def test_tracker_samples_materialized(self):
        room = get_scenario("paper-room").build_room()
        tracker = MotionCaptureTracker(room)
        drone = Crazyflie(room, config=CrazyflieConfig(noisy=False))
        from repro.drone.controller import SetPoint

        for _ in range(25):
            state = drone.step(SetPoint(forward=0.4))
            tracker.observe(state)
        samples = tracker.samples
        times, xs, ys, headings = tracker.trajectory_arrays()
        assert len(samples) == len(times) > 0
        assert [s.time for s in samples] == times.tolist()
        assert [s.position.x for s in samples] == xs.tolist()
        assert [s.position.y for s in samples] == ys.tolist()
        assert [s.heading for s in samples] == headings.tolist()

    def test_room_queries_match_reference_loops(self):
        room = get_scenario("dense-depot").build_room()
        rng = np.random.default_rng(4)
        margin = 0.07

        def reference_is_free(p):
            if not room.bounds.contains(p, margin=margin):
                return False
            for obs in room.obstacles:
                if obs.contains(p):
                    return False
                if any(s.distance_to_point(p) < margin for s in obs.segments()):
                    return False
            return True

        for _ in range(400):
            p = Vec2(rng.uniform(-0.5, room.width + 0.5), rng.uniform(-0.5, room.length + 0.5))
            assert room.is_free(p, margin=margin) == reference_is_free(p), p
        for _ in range(100):
            p = Vec2(rng.uniform(0, room.width), rng.uniform(0, room.length))
            if room.is_free(p):
                ref = min(s.distance_to_point(p) for s in room.all_segments())
                assert room.clearance(p) == pytest.approx(ref, abs=1e-12)


class TestCameraIntrinsicsCache:
    def test_focal_cached_and_correct(self):
        intr = CameraIntrinsics(320, 240, math.radians(65.0))
        expected = (320 / 2.0) / math.tan(math.radians(65.0) / 2.0)
        assert "focal_px" not in intr.__dict__
        assert intr.focal_px == expected
        assert "focal_px" in intr.__dict__  # cached after first access
        assert intr.vfov_rad == 2.0 * math.atan((240 / 2.0) / expected)

    def test_scaled_keeps_fov(self):
        intr = CameraIntrinsics(320, 240, math.radians(65.0))
        half = intr.scaled(160, 120)
        assert half.hfov_rad == intr.hfov_rad
        assert half.focal_px == pytest.approx(intr.focal_px / 2.0)
