"""SVG renderer tests: golden fixture plus structural property checks.

The golden file (``tests/data/trajectory_golden.svg``) pins the exact
output of :func:`trajectory_to_svg` for a fixed scene; regenerate it
deliberately with::

    PYTHONPATH=src python tests/test_viz_svg.py --regenerate

A diff in the golden means the report's figures changed for everyone --
that should be a reviewed decision, not a drive-by.
"""

import math
import re
from pathlib import Path

import pytest

from repro.geometry import Vec2
from repro.mapping.mocap import TrackedSample
from repro.mission.closed_loop import DetectionEvent
from repro.sim import get_scenario
from repro.viz import grid_heatmap_to_svg, sparkline_to_svg, trajectory_to_svg
from repro.world.objects import ObjectClass, SceneObject

GOLDEN = Path(__file__).parent / "data" / "trajectory_golden.svg"

_POINT_RE = re.compile(r'points="([^"]+)"')
_VIEWBOX_RE = re.compile(r'viewBox="0 0 ([\d.]+) ([\d.]+)"')


def golden_scene():
    """A deterministic scene: fixed room, spiral path, two objects."""
    room = get_scenario("paper-room").build_room()
    samples = []
    for i in range(40):
        t = 0.25 * i
        r = 0.4 + 0.05 * i
        angle = 0.35 * i
        samples.append(
            TrackedSample(
                time=t,
                position=Vec2(
                    room.width / 2 + r * math.cos(angle),
                    room.length / 2 + r * math.sin(angle),
                ),
                heading=angle,
            )
        )
    objects = [
        SceneObject(ObjectClass.BOTTLE, Vec2(1.0, 1.0), name="b1"),
        SceneObject(ObjectClass.TIN_CAN, Vec2(room.width - 1.0, 1.5), name="c1"),
    ]
    events = [DetectionEvent("b1", "bottle", 4.0, 1.2)]
    return room, samples, objects, events


def render_golden():
    room, samples, objects, events = golden_scene()
    return trajectory_to_svg(room, samples, objects, events, title="golden scene")


def _polyline_points(svg):
    return [
        tuple(float(v) for v in pair.split(","))
        for match in _POINT_RE.findall(svg)
        for pair in match.split()
    ]


def _viewbox(svg):
    match = _VIEWBOX_RE.search(svg)
    assert match, "SVG must declare a zero-origin viewBox"
    return float(match.group(1)), float(match.group(2))


class TestTrajectoryGolden:
    def test_matches_golden_fixture(self):
        assert render_golden() == GOLDEN.read_text(encoding="utf-8")

    def test_render_is_deterministic(self):
        assert render_golden() == render_golden()


class TestTrajectoryProperties:
    def test_all_points_inside_viewbox(self):
        svg = render_golden()
        width, height = _viewbox(svg)
        for x, y in _polyline_points(svg):
            assert 0.0 <= x <= width
            assert 0.0 <= y <= height

    def test_detected_objects_get_rings(self):
        svg = render_golden()
        # b1 detected -> marker + ring; c1 undetected -> marker only.
        assert svg.count('r="12"') == 1
        assert svg.count('r="7"') == 2

    def test_empty_trajectory_still_renders(self):
        room = get_scenario("paper-room").build_room()
        svg = trajectory_to_svg(room, [])
        assert svg.startswith("<svg") and svg.endswith("</svg>")
        assert "polyline" not in svg


class TestSparkline:
    def test_one_polyline_per_series(self):
        svg = sparkline_to_svg([0.0, 1.0, 2.0], [0.0, 0.4, 0.9])
        assert svg.count("<polyline") == 1

    def test_points_inside_viewbox(self):
        times = [0.5 * i for i in range(30)]
        values = [abs(math.sin(0.3 * i)) for i in range(30)]
        svg = sparkline_to_svg(times, values, y_max=1.0)
        width, height = _viewbox(svg)
        points = _polyline_points(svg)
        assert len(points) == 30
        for x, y in points:
            assert 0.0 <= x <= width
            assert 0.0 <= y <= height

    def test_values_above_ceiling_are_clamped(self):
        svg = sparkline_to_svg([0.0, 1.0], [0.5, 7.0], y_max=1.0)
        _, height = _viewbox(svg)
        for _, y in _polyline_points(svg):
            assert y >= 0.0  # clamped, not shot off the top

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="must align"):
            sparkline_to_svg([0.0, 1.0], [0.5])

    def test_empty_series_renders_frame_only(self):
        svg = sparkline_to_svg([], [])
        assert "<polyline" not in svg
        assert svg.count("<rect") == 1


class TestGridHeatmap:
    def test_one_rect_per_cell_plus_none(self):
        svg = grid_heatmap_to_svg([[0.0, 1.0], [2.0, 0.5], [0.0, 0.0]])
        assert svg.count("<rect") == 6

    def test_zero_cells_draw_dark(self):
        svg = grid_heatmap_to_svg([[0.0, 4.0]])
        assert svg.count("#30343a") == 1

    def test_peak_cell_is_full_intensity(self):
        svg = grid_heatmap_to_svg([[1.0, 2.0]])
        assert "rgb(255,130,35)" in svg  # frac == 1.0

    def test_row_zero_renders_at_bottom(self):
        svg = grid_heatmap_to_svg([[1.0], [0.0]], cell_px=10.0)
        # south row (index 0, the visited one) must be the lower rect
        rects = re.findall(r'<rect x="0.0" y="([\d.]+)" .*?fill="([^"]+)"', svg)
        rects.sort(key=lambda r: float(r[0]))
        assert rects[0][1] == "#30343a"  # top = north = unvisited
        assert rects[1][1].startswith("rgb(")

    def test_ragged_and_empty_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            grid_heatmap_to_svg([[1.0, 2.0], [3.0]])
        with pytest.raises(ValueError, match="non-empty"):
            grid_heatmap_to_svg([])


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN.write_text(render_golden(), encoding="utf-8")
        print(f"wrote {GOLDEN}")
    else:
        sys.exit("run under pytest, or pass --regenerate")
