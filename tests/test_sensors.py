"""Tests for repro.sensors (ToF, multiranger, flow deck, gyro)."""

import math

import numpy as np
import pytest

from repro.errors import SensorError
from repro.geometry.raycast import RayCaster
from repro.geometry.shapes import AABB
from repro.geometry.vec import Vec2
from repro.sensors import (
    FlowDeck,
    Gyro,
    MultiRangerDeck,
    ToFSensor,
    VL53L1X_MAX_RANGE_M,
)


@pytest.fixture
def box_caster():
    return RayCaster(AABB(0.0, 0.0, 10.0, 10.0).boundary_segments())


class TestToFSensor:
    def test_noise_free_exact(self, box_caster):
        sensor = ToFSensor(mount_angle=0.0, rng=None)
        d = sensor.measure(box_caster, Vec2(5.0, 5.0), 0.0)
        assert d == pytest.approx(4.0)  # saturates at max range (wall at 5)

    def test_within_range(self, box_caster):
        sensor = ToFSensor(mount_angle=0.0, rng=None)
        d = sensor.measure(box_caster, Vec2(7.0, 5.0), 0.0)
        assert d == pytest.approx(3.0)

    def test_mount_angle(self, box_caster):
        left = ToFSensor(mount_angle=math.pi / 2, rng=None)
        d = left.measure(box_caster, Vec2(5.0, 8.0), 0.0)
        assert d == pytest.approx(2.0)

    def test_noise_bounded(self, box_caster):
        rng = np.random.default_rng(0)
        sensor = ToFSensor(0.0, noise_std=0.05, dropout_prob=0.0, rng=rng)
        for _ in range(100):
            d = sensor.measure(box_caster, Vec2(8.0, 5.0), 0.0)
            assert 0.0 <= d <= VL53L1X_MAX_RANGE_M

    def test_dropout_reports_max(self, box_caster):
        rng = np.random.default_rng(0)
        sensor = ToFSensor(0.0, noise_std=0.0, dropout_prob=1.0, rng=rng)
        assert sensor.measure(box_caster, Vec2(8.0, 5.0), 0.0) == VL53L1X_MAX_RANGE_M

    def test_bad_config(self):
        with pytest.raises(SensorError):
            ToFSensor(0.0, max_range=-1.0)
        with pytest.raises(SensorError):
            ToFSensor(0.0, dropout_prob=1.5)


class TestMultiRanger:
    def test_reading_geometry(self, box_caster):
        deck = MultiRangerDeck(rng=None, noise_std=0.0, dropout_prob=0.0)
        r = deck.read(box_caster, Vec2(2.0, 5.0), 0.0)
        assert r.front == pytest.approx(4.0)  # wall at 8 m -> saturated
        assert r.back == pytest.approx(2.0)
        assert r.left == pytest.approx(4.0)  # wall at 5 m -> saturated
        assert r.right == pytest.approx(4.0)
        assert r.up == deck.max_range

    def test_heading_rotates_beams(self, box_caster):
        deck = MultiRangerDeck(rng=None, noise_std=0.0, dropout_prob=0.0)
        r = deck.read(box_caster, Vec2(2.0, 5.0), math.pi)
        assert r.front == pytest.approx(2.0)

    def test_min_horizontal_and_dict(self, box_caster):
        deck = MultiRangerDeck(rng=None, noise_std=0.0, dropout_prob=0.0)
        r = deck.read(box_caster, Vec2(1.0, 5.0), 0.0)
        assert r.min_horizontal() == pytest.approx(1.0)
        assert set(r.as_dict()) == {"front", "back", "left", "right", "up"}


class TestFlowDeck:
    def test_noise_free(self):
        deck = FlowDeck(rng=None)
        s = deck.read(0.5, -0.1, 0.5)
        assert s.vx == 0.5 and s.vy == -0.1 and s.height == 0.5

    def test_noise_statistics(self):
        deck = FlowDeck(velocity_noise_std=0.02, rng=np.random.default_rng(0))
        vs = [deck.read(1.0, 0.0, 0.5).vx for _ in range(500)]
        assert np.mean(vs) == pytest.approx(1.0, abs=0.02)
        assert np.std(vs) == pytest.approx(0.02, rel=0.3)

    def test_bad_noise(self):
        with pytest.raises(SensorError):
            FlowDeck(velocity_noise_std=-1.0)


class TestGyro:
    def test_noise_free(self):
        assert Gyro(rng=None).read(0.7) == 0.7

    def test_bias_constant(self):
        g = Gyro(noise_std=0.0, bias_std=0.01, rng=np.random.default_rng(3))
        readings = {g.read(0.0) for _ in range(10)}
        assert len(readings) == 1  # pure bias, no white noise
        assert abs(next(iter(readings))) > 0.0
