"""Tests for repro.mapping: occupancy grid, mocap tracker, coverage."""

import numpy as np
import pytest

from repro.drone.dynamics import DroneState
from repro.errors import WorldError
from repro.geometry.vec import Vec2
from repro.mapping import CoverageSeries, MotionCaptureTracker, OccupancyGrid
from repro.world import Room, paper_room


class TestOccupancyGrid:
    def test_paper_cell_count(self):
        grid = OccupancyGrid(paper_room())
        assert grid.n_cells == 143  # 13 x 11 cells of 0.5 m (paper Sec. IV-B)

    def test_bad_cell_size(self):
        with pytest.raises(WorldError):
            OccupancyGrid(paper_room(), cell_size=0.0)

    def test_cell_of_clamps_wall_touches(self):
        grid = OccupancyGrid(Room(2.0, 2.0))
        assert grid.cell_of(Vec2(0.1, 0.1)) == (0, 0)
        # On the far walls the position still counts inside the room.
        assert grid.cell_of(Vec2(2.0, 2.0)) == (grid.nx - 1, grid.ny - 1)
        assert grid.cell_of(Vec2(0.0, 2.0)) == (0, grid.ny - 1)

    def test_cell_of_rejects_out_of_room(self):
        # Regression: these used to clamp into edge cells, silently
        # accruing coverage for poses outside the room.
        grid = OccupancyGrid(Room(2.0, 2.0))
        with pytest.raises(WorldError):
            grid.cell_of(Vec2(-1.0, 5.0))
        with pytest.raises(WorldError):
            grid.cell_of(Vec2(0.5, 2.1))

    def test_cell_of_rejects_non_finite(self):
        grid = OccupancyGrid(Room(2.0, 2.0))
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(WorldError):
                grid.cell_of(Vec2(bad, 0.5))
            with pytest.raises(WorldError):
                grid.cell_of(Vec2(0.5, bad))

    def test_record_counts_out_of_room_dwell_separately(self):
        grid = OccupancyGrid(Room(2.0, 2.0), cell_size=0.5)
        grid.record(Vec2(-0.3, 1.0), 0.02)
        grid.record(Vec2(1.0, 2.4), 0.02)
        assert grid.visited_count() == 0
        assert grid.coverage() == 0.0
        assert grid.out_of_room_count == 2
        assert grid.out_of_room_time == pytest.approx(0.04)
        grid.record(Vec2(1.0, 1.0), 0.02)
        assert grid.visited_count() == 1
        assert grid.out_of_room_count == 2

    def test_record_rejects_non_finite(self):
        grid = OccupancyGrid(Room(2.0, 2.0))
        with pytest.raises(WorldError):
            grid.record(Vec2(float("nan"), 1.0), 0.02)

    def test_record_and_coverage(self):
        grid = OccupancyGrid(Room(1.0, 1.0), cell_size=0.5)
        assert grid.n_cells == 4
        grid.record(Vec2(0.25, 0.25), 0.1)
        grid.record(Vec2(0.75, 0.25), 0.1)
        assert grid.visited_count() == 2
        assert grid.coverage() == pytest.approx(0.5)

    def test_no_start_means_raw_normalization(self):
        grid = OccupancyGrid(Room(1.0, 1.0), cell_size=0.5)
        assert grid.reachable_cells == grid.n_cells
        assert grid.reachable_mask.all()
        grid.record(Vec2(0.25, 0.25), 0.1)
        assert grid.coverage() == grid.coverage_raw()

    def test_fully_reachable_grid_matches_raw_exactly(self):
        # The paper room is empty: every cell is reachable, so the
        # normalized and the raw fraction agree down to the float.
        grid = OccupancyGrid(paper_room(), start=Vec2(1.0, 1.0))
        assert grid.reachable_cells == grid.n_cells == 143
        for x, y in [(1.0, 1.0), (3.3, 2.2), (6.4, 5.4), (0.1, 5.0)]:
            grid.record(Vec2(x, y), 0.02)
        assert grid.coverage() == grid.visited_count() / grid.n_cells
        assert grid.coverage() == grid.coverage_raw()

    def test_unreachable_cells_excluded_both_ways(self):
        # A wall splits the room; cells behind it are unreachable from
        # the start, so they count in neither numerator nor denominator.
        from repro.geometry.shapes import AABB
        from repro.world.room import Obstacle

        room = Room(4.0, 2.0, [Obstacle(AABB(1.9, 0.0, 2.1, 2.0), name="wall")])
        grid = OccupancyGrid(room, cell_size=0.5, start=Vec2(0.5, 0.5))
        assert 0 < grid.reachable_cells < grid.n_cells
        # Sweep every cell centre, including the sealed right half.
        for iy in range(grid.ny):
            for ix in range(grid.nx):
                grid.record(Vec2((ix + 0.5) * 0.5, (iy + 0.5) * 0.5), 0.02)
        assert grid.visited_count() == grid.n_cells
        assert grid.coverage() == 1.0
        assert grid.coverage_raw() == 1.0
        assert grid.visited_reachable_count() == grid.reachable_cells

    def test_occupancy_time_accumulates(self):
        grid = OccupancyGrid(Room(1.0, 1.0), cell_size=0.5)
        for _ in range(5):
            grid.record(Vec2(0.25, 0.25), 0.02)
        assert grid.occupancy_time[0, 0] == pytest.approx(0.1)

    def test_heatmap_cap(self):
        grid = OccupancyGrid(Room(1.0, 1.0), cell_size=0.5)
        grid.record(Vec2(0.25, 0.25), 100.0)
        assert grid.heatmap(cap_seconds=18.0).max() == 18.0

    def test_render_ascii(self):
        grid = OccupancyGrid(Room(1.0, 1.0), cell_size=0.5)
        grid.record(Vec2(0.25, 0.25), 5.0)
        art = grid.render_ascii()
        lines = art.split("\n")
        assert len(lines) == grid.ny
        assert lines[-1][0] != "."  # visited bottom-left cell
        assert lines[0][1] == "."  # untouched top-right cell


class TestMocapTracker:
    def test_rate_limiting(self):
        tracker = MotionCaptureTracker(paper_room(), rate_hz=50.0)
        s0 = DroneState(Vec2(1.0, 1.0), 0.0, time=0.0)
        s1 = DroneState(Vec2(1.0, 1.0), 0.0, time=0.01)  # 10 ms later
        s2 = DroneState(Vec2(1.0, 1.0), 0.0, time=0.02)  # 20 ms
        assert tracker.observe(s0)
        assert not tracker.observe(s1)
        assert tracker.observe(s2)
        assert len(tracker.samples) == 2

    def test_coverage_reported(self):
        tracker = MotionCaptureTracker(paper_room())
        tracker.observe(DroneState(Vec2(1.0, 1.0), 0.0, time=0.0))
        assert tracker.coverage() == pytest.approx(1.0 / 143.0)

    def test_coverage_normalized_by_reachable_cells(self):
        from repro.geometry.shapes import AABB
        from repro.world.room import Obstacle

        room = Room(4.0, 2.0, [Obstacle(AABB(1.9, 0.0, 2.1, 2.0), name="wall")])
        tracker = MotionCaptureTracker(room, start=Vec2(0.5, 0.5))
        assert tracker.reachable_cells == tracker.grid.reachable_cells
        assert tracker.reachable_cells < tracker.grid.n_cells
        tracker.observe(DroneState(Vec2(0.5, 0.5), 0.0, time=0.0))
        assert tracker.coverage() == 1.0 / tracker.reachable_cells
        assert tracker.coverage_raw() == 1.0 / tracker.grid.n_cells
        assert tracker.coverage() > tracker.coverage_raw()


class TestCoverageSeries:
    def test_monotone_time_enforced(self):
        s = CoverageSeries()
        s.append(0.0, 0.0)
        s.append(1.0, 0.1)
        with pytest.raises(ValueError):
            s.append(0.5, 0.2)

    def test_at_interpolates_stepwise(self):
        s = CoverageSeries()
        s.append(0.0, 0.0)
        s.append(10.0, 0.5)
        assert s.at(-1.0) == 0.0
        assert s.at(5.0) == 0.0
        assert s.at(10.0) == 0.5
        assert s.at(100.0) == 0.5
        assert s.final() == 0.5

    def test_mean_and_variance(self):
        a, b = CoverageSeries(), CoverageSeries()
        for t, va, vb in [(0.0, 0.0, 0.0), (10.0, 0.2, 0.4)]:
            a.append(t, va)
            b.append(t, vb)
        grid = np.array([0.0, 10.0])
        mean, var = CoverageSeries.mean_and_variance([a, b], grid)
        assert mean[1] == pytest.approx(0.3)
        assert var[1] == pytest.approx(0.01)

    def test_mean_requires_series(self):
        with pytest.raises(ValueError):
            CoverageSeries.mean_and_variance([], np.array([0.0]))

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_append_rejects_non_finite_time(self, bad):
        s = CoverageSeries()
        with pytest.raises(ValueError):
            s.append(bad, 0.1)
        assert len(s.times) == 0  # nothing was recorded

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_append_rejects_non_finite_coverage(self, bad):
        s = CoverageSeries()
        s.append(0.0, 0.0)
        with pytest.raises(ValueError):
            s.append(1.0, bad)
        # The poisoned sample never entered the aggregates.
        mean, var = CoverageSeries.mean_and_variance([s], np.array([0.0, 2.0]))
        assert np.isfinite(mean).all() and np.isfinite(var).all()

    def test_empty_series_paths(self):
        s = CoverageSeries()
        assert s.final() == 0.0
        assert s.at(3.0) == 0.0
        assert s.at_many(np.array([0.0, 1.0])).tolist() == [0.0, 0.0]
        assert s.times.size == 0 and s.coverage.size == 0
