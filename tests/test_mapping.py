"""Tests for repro.mapping: occupancy grid, mocap tracker, coverage."""

import numpy as np
import pytest

from repro.drone.dynamics import DroneState
from repro.errors import WorldError
from repro.geometry.vec import Vec2
from repro.mapping import CoverageSeries, MotionCaptureTracker, OccupancyGrid
from repro.world import Room, paper_room


class TestOccupancyGrid:
    def test_paper_cell_count(self):
        grid = OccupancyGrid(paper_room())
        assert grid.n_cells == 143  # 13 x 11 cells of 0.5 m (paper Sec. IV-B)

    def test_bad_cell_size(self):
        with pytest.raises(WorldError):
            OccupancyGrid(paper_room(), cell_size=0.0)

    def test_cell_of_clamps(self):
        grid = OccupancyGrid(Room(2.0, 2.0))
        assert grid.cell_of(Vec2(0.1, 0.1)) == (0, 0)
        assert grid.cell_of(Vec2(2.0, 2.0)) == (grid.nx - 1, grid.ny - 1)
        assert grid.cell_of(Vec2(-1.0, 5.0)) == (0, grid.ny - 1)

    def test_record_and_coverage(self):
        grid = OccupancyGrid(Room(1.0, 1.0), cell_size=0.5)
        assert grid.n_cells == 4
        grid.record(Vec2(0.25, 0.25), 0.1)
        grid.record(Vec2(0.75, 0.25), 0.1)
        assert grid.visited_count() == 2
        assert grid.coverage() == pytest.approx(0.5)

    def test_occupancy_time_accumulates(self):
        grid = OccupancyGrid(Room(1.0, 1.0), cell_size=0.5)
        for _ in range(5):
            grid.record(Vec2(0.25, 0.25), 0.02)
        assert grid.occupancy_time[0, 0] == pytest.approx(0.1)

    def test_heatmap_cap(self):
        grid = OccupancyGrid(Room(1.0, 1.0), cell_size=0.5)
        grid.record(Vec2(0.25, 0.25), 100.0)
        assert grid.heatmap(cap_seconds=18.0).max() == 18.0

    def test_render_ascii(self):
        grid = OccupancyGrid(Room(1.0, 1.0), cell_size=0.5)
        grid.record(Vec2(0.25, 0.25), 5.0)
        art = grid.render_ascii()
        lines = art.split("\n")
        assert len(lines) == grid.ny
        assert lines[-1][0] != "."  # visited bottom-left cell
        assert lines[0][1] == "."  # untouched top-right cell


class TestMocapTracker:
    def test_rate_limiting(self):
        tracker = MotionCaptureTracker(paper_room(), rate_hz=50.0)
        s0 = DroneState(Vec2(1.0, 1.0), 0.0, time=0.0)
        s1 = DroneState(Vec2(1.0, 1.0), 0.0, time=0.01)  # 10 ms later
        s2 = DroneState(Vec2(1.0, 1.0), 0.0, time=0.02)  # 20 ms
        assert tracker.observe(s0)
        assert not tracker.observe(s1)
        assert tracker.observe(s2)
        assert len(tracker.samples) == 2

    def test_coverage_reported(self):
        tracker = MotionCaptureTracker(paper_room())
        tracker.observe(DroneState(Vec2(1.0, 1.0), 0.0, time=0.0))
        assert tracker.coverage() == pytest.approx(1.0 / 143.0)


class TestCoverageSeries:
    def test_monotone_time_enforced(self):
        s = CoverageSeries()
        s.append(0.0, 0.0)
        s.append(1.0, 0.1)
        with pytest.raises(ValueError):
            s.append(0.5, 0.2)

    def test_at_interpolates_stepwise(self):
        s = CoverageSeries()
        s.append(0.0, 0.0)
        s.append(10.0, 0.5)
        assert s.at(-1.0) == 0.0
        assert s.at(5.0) == 0.0
        assert s.at(10.0) == 0.5
        assert s.at(100.0) == 0.5
        assert s.final() == 0.5

    def test_mean_and_variance(self):
        a, b = CoverageSeries(), CoverageSeries()
        for t, va, vb in [(0.0, 0.0, 0.0), (10.0, 0.2, 0.4)]:
            a.append(t, va)
            b.append(t, vb)
        grid = np.array([0.0, 10.0])
        mean, var = CoverageSeries.mean_and_variance([a, b], grid)
        assert mean[1] == pytest.approx(0.3)
        assert var[1] == pytest.approx(0.01)

    def test_mean_requires_series(self):
        with pytest.raises(ValueError):
            CoverageSeries.mean_and_variance([], np.array([0.0]))
