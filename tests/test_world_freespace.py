"""Tests for repro.world.freespace and the reachable-coverage metric.

Covers the PR-4 acceptance criteria:

- the ``free_space_mask``/``flood_fill`` extraction out of
  ``repro.sim.generators`` is a *pure move*: generated-world content
  hashes and raster fingerprints are byte-identical to the pre-PR ones,
- on a fully-reachable raster the normalized coverage equals
  ``visited / n_cells`` exactly,
- on a generated perfect maze a full sweep of the reachable cells
  reports ``coverage == 1.0`` while ``coverage_raw < 1.0``.
"""

import hashlib

import numpy as np
import pytest

from repro.geometry.shapes import AABB
from repro.geometry.vec import Vec2
from repro.mapping.occupancy import OccupancyGrid
from repro.mission.explorer import ExplorationMission
from repro.policies import PolicyConfig
from repro.policies.pseudo_random import PseudoRandomPolicy
from repro.sim import generate_scenario, get_scenario
from repro.world import (
    FINE_RESOLUTION_M,
    VALIDATION_MARGIN_M,
    Obstacle,
    Room,
    flood_fill,
    free_space_mask,
    reachable_cell_mask,
    reachable_free_mask,
)

#: Content hashes of generated worlds captured on the pre-extraction
#: tree (PR 3): the move of the raster code must not change a byte of
#: any generated scenario.
PINNED_CONTENT_HASHES = {
    ("perfect-maze", (("cell_m", 1.0), ("cols", 6), ("rows", 5)), 3): (
        "03ff1a4e23d02a0580d19570fe21a6f72a6a8d9ba3985d0266b511400253b560"
    ),
    ("perfect-maze", (), 0): (
        "494ca020c360d348347ea5bd07a096e3f31cdb65a307da2cc08bc616aa7f69a5"
    ),
    ("random-apartment", (), 1): (
        "34b40af243610dd82d545fafc1d0e3162c36c8bd5eba5afcf121112b636a2342"
    ),
    ("cluttered-warehouse", (), 2): (
        "7a85ae681b0530402ef103984f9648afe36f67b9f1e4b2ac0d15476af845923b"
    ),
    ("scatter-field", (), 4): (
        "55b1b0aff626eb0566c04166ccc847432ba1c64800228fe2b0c8b011ab0090ba"
    ),
}

#: sha256[:16] of ``np.packbits(free_space_mask(room, 0.25))`` captured
#: pre-extraction for two generated worlds.
PINNED_RASTER_FINGERPRINTS = {
    ("perfect-maze", (("cell_m", 1.0), ("cols", 6), ("rows", 5)), 3): (
        "f2627b986bfb06b8"
    ),
    ("cluttered-warehouse", (), 2): "b8454683e46e0fc5",
}


def _mask_digest(mask: np.ndarray) -> str:
    return hashlib.sha256(np.packbits(mask).tobytes()).hexdigest()[:16]


class TestPureMove:
    def test_generators_reexport_same_functions(self):
        from repro.sim import generators

        assert generators.free_space_mask is free_space_mask
        assert generators.flood_fill is flood_fill
        assert generators.VALIDATION_MARGIN_M == VALIDATION_MARGIN_M

    @pytest.mark.parametrize(
        "family, params, seed, expected",
        [(k[0], dict(k[1]), k[2], v) for k, v in PINNED_CONTENT_HASHES.items()],
    )
    def test_generated_content_hashes_unchanged(self, family, params, seed, expected):
        assert generate_scenario(family, params, seed).content_hash() == expected

    @pytest.mark.parametrize(
        "family, params, seed, expected",
        [(k[0], dict(k[1]), k[2], v) for k, v in PINNED_RASTER_FINGERPRINTS.items()],
    )
    def test_raster_fingerprints_unchanged(self, family, params, seed, expected):
        room = generate_scenario(family, params, seed).build_room()
        assert _mask_digest(free_space_mask(room, 0.25)) == expected


class TestReachableFreeMask:
    def test_seeded_at_start_cell(self):
        room = Room(4.0, 2.0, [Obstacle(AABB(1.9, 0.0, 2.1, 2.0), name="wall")])
        left = reachable_free_mask(room, Vec2(0.5, 0.5), 0.1)
        right = reachable_free_mask(room, Vec2(3.5, 0.5), 0.1)
        free = free_space_mask(room, 0.1)
        assert left.sum() + right.sum() == free.sum()
        assert not (left & right).any()

    def test_blocked_start_snaps_to_nearest_free_cell(self):
        # A pose hugging the wall closer than the margin sits on a
        # blocked raster cell; the fill must still find the component.
        room = Room(4.0, 2.0)
        hugging = reachable_free_mask(room, Vec2(0.02, 0.02), 0.1)
        centred = reachable_free_mask(room, Vec2(2.0, 1.0), 0.1)
        assert (hugging == centred).all()
        assert hugging.any()

    def test_no_free_space_is_empty(self):
        room = Room(1.0, 1.0, [Obstacle(AABB(0.0, 0.0, 1.0, 1.0), name="slab")])
        assert not reachable_free_mask(room, Vec2(0.5, 0.5), 0.1).any()


class TestReachableCellMask:
    def test_empty_room_every_cell_reachable(self):
        room = get_scenario("paper-room").room.build()
        mask = reachable_cell_mask(room, Vec2(1.0, 1.0), 0.5, (11, 13))
        assert mask.shape == (11, 13)
        assert mask.all()

    def test_sealed_pocket_unreachable(self):
        room = Room(4.0, 2.0, [Obstacle(AABB(1.9, 0.0, 2.1, 2.0), name="wall")])
        mask = reachable_cell_mask(room, Vec2(0.5, 0.5), 0.5, (4, 8))
        # Left of the wall reachable, right half not; the wall column
        # cells still contain reachable free space on their left edge.
        assert mask[:, :3].all()
        assert not mask[:, 5:].any()

    def test_ceil_overshoot_cells_unreachable(self):
        # 2.05 m room on a 0.5 m grid: the 5th column covers only the
        # margin sliver before the far wall plus the ceil overshoot
        # beyond it, so no reachable free space falls inside it.
        room = Room(2.05, 2.0)
        mask = reachable_cell_mask(room, Vec2(0.5, 0.5), 0.5, (4, 5))
        assert mask[:, :4].all()
        assert not mask[:, 4].any()

    def test_degenerate_world_counts_every_cell(self):
        room = Room(1.0, 1.0, [Obstacle(AABB(0.0, 0.0, 1.0, 1.0), name="slab")])
        mask = reachable_cell_mask(room, Vec2(0.5, 0.5), 0.5, (2, 2))
        assert mask.all()  # degrade to raw normalization, never 0/0

    def test_fine_resolution_resolves_generator_walls(self):
        assert FINE_RESOLUTION_M <= 0.1


class TestCoverageAcceptance:
    def test_maze_full_sweep_hits_one(self):
        # Acceptance: sweeping every reachable cell of a generated
        # perfect maze reports coverage == 1.0 while the raw all-cells
        # fraction stays below 1.0 (the grid has unreachable cells).
        scenario = generate_scenario("perfect-maze", {}, seed=0)
        room = scenario.build_room()
        grid = OccupancyGrid(room, start=Vec2(*scenario.start))
        assert grid.reachable_cells == 456
        assert grid.n_cells == 480
        mask = grid.reachable_mask
        for iy in range(grid.ny):
            for ix in range(grid.nx):
                if mask[iy, ix]:
                    grid.record(
                        Vec2((ix + 0.5) * grid.cell_size, (iy + 0.5) * grid.cell_size),
                        0.02,
                    )
        assert grid.coverage() == 1.0
        assert grid.coverage_raw() == 456 / 480
        assert grid.coverage_raw() < 1.0

    def test_pinned_reachable_counts(self):
        # Geometry-deterministic regression values for the worlds the
        # figures and the CI smoke campaign fly.
        cases = {
            ("paper-room",): (143, 143),
            ("cluttered-warehouse",): (1308, 1536),
        }
        room = get_scenario("paper-room").room.build()
        grid = OccupancyGrid(room, start=Vec2(1.0, 1.0))
        assert (grid.reachable_cells, grid.n_cells) == cases[("paper-room",)]
        scenario = generate_scenario("cluttered-warehouse", {}, seed=2)
        grid = OccupancyGrid(scenario.build_room(), start=Vec2(*scenario.start))
        assert (grid.reachable_cells, grid.n_cells) == cases[("cluttered-warehouse",)]

    def test_paper_room_mission_coverage_equals_raw(self):
        # Acceptance: on a fully-reachable raster the two
        # normalizations agree exactly, so the Fig. 5 / Fig. 6 numbers
        # on the paper room are untouched by the metric fix.
        room = get_scenario("paper-room").room.build()
        mission = ExplorationMission(
            room,
            PseudoRandomPolicy(PolicyConfig(cruise_speed=0.5)),
            flight_time_s=20.0,
        )
        result = mission.run(seed=3)
        assert result.reachable_cells == result.grid.n_cells == 143
        assert result.grid_cells == 143
        assert result.coverage == result.coverage_raw
        assert result.coverage == result.grid.visited_count() / result.grid.n_cells

    def test_maze_mission_reports_normalized_coverage(self):
        # 6.6 x 5.5 m: the 0.5 m grid overshoots the width by 0.4 m and
        # the last in-room sliver sits inside the margin band, so the
        # 14th column (11 cells) is unreachable: 143 of 154 cells.
        scenario = generate_scenario(
            "perfect-maze", {"cols": 6, "rows": 5, "cell_m": 1.1}, seed=1
        )
        mission = ExplorationMission(
            scenario.build_room(),
            PseudoRandomPolicy(PolicyConfig(cruise_speed=0.5)),
            flight_time_s=15.0,
            start=Vec2(*scenario.start),
        )
        result = mission.run(seed=2)
        assert 0 < result.reachable_cells < result.grid_cells
        assert result.coverage <= 1.0
        assert result.coverage == pytest.approx(
            result.grid.visited_reachable_count() / result.reachable_cells
        )
        assert result.coverage > result.coverage_raw
