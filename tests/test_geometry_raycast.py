"""Tests for repro.geometry.raycast."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import GeometryError
from repro.geometry.raycast import RayCaster
from repro.geometry.segments import Segment, ray_segment_intersection
from repro.geometry.shapes import AABB
from repro.geometry.vec import Vec2


@pytest.fixture
def unit_box_caster():
    return RayCaster(AABB(0.0, 0.0, 4.0, 3.0).boundary_segments())


class TestRayCaster:
    def test_needs_segments(self):
        with pytest.raises(GeometryError):
            RayCaster([])

    def test_axis_hits(self, unit_box_caster):
        origin = Vec2(1.0, 1.0)
        assert unit_box_caster.cast(origin, 0.0) == pytest.approx(3.0)
        assert unit_box_caster.cast(origin, math.pi) == pytest.approx(1.0)
        assert unit_box_caster.cast(origin, math.pi / 2) == pytest.approx(2.0)
        assert unit_box_caster.cast(origin, -math.pi / 2) == pytest.approx(1.0)

    def test_max_range_saturation(self, unit_box_caster):
        assert unit_box_caster.cast(Vec2(1.0, 1.0), 0.0, max_range=2.0) == 2.0

    def test_cast_hit_none_outside(self):
        caster = RayCaster([Segment(Vec2(1.0, -1.0), Vec2(1.0, 1.0))])
        assert caster.cast_hit(Vec2(0.0, 0.0), math.pi) is None

    def test_cast_many(self, unit_box_caster):
        d = unit_box_caster.cast_many(Vec2(2.0, 1.5), [0.0, math.pi])
        assert d.shape == (2,)
        assert d[0] == pytest.approx(2.0)
        assert d[1] == pytest.approx(2.0)

    def test_matches_scalar_implementation(self):
        rng = np.random.default_rng(0)
        segs = [
            Segment(
                Vec2(rng.uniform(-5, 5), rng.uniform(-5, 5)),
                Vec2(rng.uniform(-5, 5), rng.uniform(-5, 5)),
            )
            for _ in range(20)
        ]
        caster = RayCaster(segs)
        for _ in range(50):
            origin = Vec2(rng.uniform(-5, 5), rng.uniform(-5, 5))
            heading = rng.uniform(-math.pi, math.pi)
            expected = [
                d
                for d in (
                    ray_segment_intersection(origin, heading, s) for s in segs
                )
                if d is not None
            ]
            got = caster.cast_hit(origin, heading)
            if not expected:
                assert got is None
            else:
                assert got == pytest.approx(min(expected), abs=1e-9)

    def test_line_of_sight(self, unit_box_caster):
        assert unit_box_caster.line_of_sight(Vec2(1.0, 1.0), Vec2(3.0, 2.0))

    def test_line_of_sight_blocked(self):
        wall = Segment(Vec2(1.0, -1.0), Vec2(1.0, 1.0))
        caster = RayCaster([wall])
        assert not caster.line_of_sight(Vec2(0.0, 0.0), Vec2(2.0, 0.0))
        # Target just in front of the wall is visible.
        assert caster.line_of_sight(Vec2(0.0, 0.0), Vec2(0.9, 0.0))

    @given(st.floats(-math.pi, math.pi))
    def test_cast_inside_box_always_hits(self, heading):
        caster = RayCaster(AABB(0.0, 0.0, 4.0, 3.0).boundary_segments())
        d = caster.cast_hit(Vec2(2.0, 1.5), heading)
        assert d is not None
        assert 0.0 < d <= math.hypot(2.0, 1.5) + 1e-6
