"""Tests for repro.geometry.segments and repro.geometry.shapes."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.segments import Segment, ray_segment_intersection
from repro.geometry.shapes import AABB, Circle
from repro.geometry.vec import Vec2


class TestSegment:
    def test_degenerate_rejected(self):
        with pytest.raises(GeometryError):
            Segment(Vec2(1.0, 1.0), Vec2(1.0, 1.0))

    def test_length_direction(self):
        s = Segment(Vec2(0.0, 0.0), Vec2(3.0, 4.0))
        assert s.length() == pytest.approx(5.0)
        d = s.direction()
        assert d.x == pytest.approx(0.6)
        assert d.y == pytest.approx(0.8)

    def test_midpoint_point_at(self):
        s = Segment(Vec2(0.0, 0.0), Vec2(2.0, 0.0))
        assert s.midpoint() == Vec2(1.0, 0.0)
        assert s.point_at(0.25) == Vec2(0.5, 0.0)

    def test_distance_to_point(self):
        s = Segment(Vec2(0.0, 0.0), Vec2(2.0, 0.0))
        assert s.distance_to_point(Vec2(1.0, 1.0)) == pytest.approx(1.0)
        assert s.distance_to_point(Vec2(3.0, 0.0)) == pytest.approx(1.0)  # clamps


class TestRaySegment:
    def test_perpendicular_hit(self):
        seg = Segment(Vec2(1.0, -1.0), Vec2(1.0, 1.0))
        assert ray_segment_intersection(Vec2(0.0, 0.0), 0.0, seg) == pytest.approx(1.0)

    def test_miss_behind(self):
        seg = Segment(Vec2(-1.0, -1.0), Vec2(-1.0, 1.0))
        assert ray_segment_intersection(Vec2(0.0, 0.0), 0.0, seg) is None

    def test_parallel(self):
        seg = Segment(Vec2(0.0, 1.0), Vec2(2.0, 1.0))
        assert ray_segment_intersection(Vec2(0.0, 0.0), 0.0, seg) is None

    def test_oblique(self):
        seg = Segment(Vec2(2.0, 0.0), Vec2(0.0, 2.0))
        d = ray_segment_intersection(Vec2(0.0, 0.0), math.pi / 4, seg)
        assert d == pytest.approx(math.sqrt(2.0))

    def test_off_segment_miss(self):
        seg = Segment(Vec2(1.0, 1.0), Vec2(1.0, 2.0))
        assert ray_segment_intersection(Vec2(0.0, 0.0), 0.0, seg) is None


class TestAABB:
    def test_empty_rejected(self):
        with pytest.raises(GeometryError):
            AABB(0.0, 0.0, 0.0, 1.0)

    def test_properties(self):
        box = AABB(0.0, 0.0, 4.0, 2.0)
        assert box.width == 4.0
        assert box.height == 2.0
        assert box.area == 8.0
        assert box.center == Vec2(2.0, 1.0)

    def test_contains_margin(self):
        box = AABB(0.0, 0.0, 4.0, 2.0)
        assert box.contains(Vec2(1.0, 1.0))
        assert not box.contains(Vec2(5.0, 1.0))
        assert not box.contains(Vec2(0.2, 1.0), margin=0.5)

    def test_boundary_segments(self):
        box = AABB(0.0, 0.0, 1.0, 1.0)
        segs = box.boundary_segments()
        assert len(segs) == 4
        assert sum(s.length() for s in segs) == pytest.approx(4.0)

    def test_inflate(self):
        box = AABB(0.0, 0.0, 1.0, 1.0).inflate(0.5)
        assert box.xmin == -0.5 and box.ymax == 1.5


class TestCircle:
    def test_bad_radius(self):
        with pytest.raises(GeometryError):
            Circle(Vec2(0.0, 0.0), 0.0)

    def test_contains(self):
        c = Circle(Vec2(0.0, 0.0), 1.0)
        assert c.contains(Vec2(0.5, 0.5))
        assert not c.contains(Vec2(1.0, 1.0))

    def test_boundary_polygon(self):
        c = Circle(Vec2(0.0, 0.0), 1.0)
        segs = c.boundary_segments(sides=32)
        assert len(segs) == 32
        # Perimeter approximates 2*pi*r from below.
        total = sum(s.length() for s in segs)
        assert total == pytest.approx(2 * math.pi, rel=0.01)
        with pytest.raises(GeometryError):
            c.boundary_segments(sides=2)
