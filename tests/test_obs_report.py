"""Smoke tests of the HTML campaign report."""

import pytest

from repro.exec import ResultCache
from repro.obs.replay import campaign_hashes
from repro.obs.report import render_report, write_report
from repro.sim import Campaign, get_scenario, run_campaign


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    cache_dir = str(tmp_path_factory.mktemp("cache"))
    campaign = Campaign(
        name="report-smoke",
        scenarios=(get_scenario("paper-room"),),
        n_runs=3,
        flight_time_s=6.0,
        seed=9,
    )
    result = run_campaign(campaign, cache=ResultCache(cache_dir), record=True)
    return cache_dir, result


class TestRenderReport:
    def test_full_report_with_traces(self, recorded):
        cache_dir, result = recorded
        html = render_report(result, cache_dir=cache_dir)
        assert html.lstrip().startswith("<!DOCTYPE html>")
        # one trajectory + one heatmap + one sparkline per mission
        assert html.count("<svg") >= 3 * len(result.records)
        assert "best" in html and "worst" in html
        for h in campaign_hashes(result):
            assert h[:12] in html

    def test_report_without_traces_degrades(self, recorded):
        _, result = recorded
        html = render_report(result, cache_dir=None)
        # sparklines come from the records themselves; no trajectories
        assert html.count("<svg") >= len(result.records)
        assert "no flight trace recorded" in html

    def test_write_report(self, recorded, tmp_path):
        cache_dir, result = recorded
        out = tmp_path / "report.html"
        path = write_report(result, str(out), cache_dir=cache_dir)
        assert path == str(out)
        assert out.read_text(encoding="utf-8").lstrip().startswith("<!DOCTYPE html>")
