"""Serial == pooled == cached, pinned on missions *and* training jobs.

The execution layer's core promise: however a job runs -- in-process,
in a worker pool, or served from the persistent cache -- the caller
receives byte-identical results. Exercised here on a generated
perfect-maze campaign and on a Table I training smoke run.
"""

import numpy as np

from repro.exec import ResultCache
from repro.experiments import fig3, table1
from repro.experiments.config import SMOKE_SCALE, quick
from repro.sim import Campaign, GeneratedSpec, run_campaign

TINY_TRAIN = quick(
    SMOKE_SCALE,
    train_images=8,
    finetune_images=8,
    test_images=8,
    pretrain_epochs=1,
    finetune_epochs=1,
    batch_size=4,
    widths=(0.5,),
)


def maze_campaign():
    return Campaign(
        name="equivalence-maze",
        generated=(
            GeneratedSpec.create(
                "perfect-maze", {"cols": 5, "rows": 4, "cell_m": 1.1}, seed=1
            ),
        ),
        kind="explore",
        n_runs=2,
        flight_time_s=10.0,
        seed=21,
    )


class TestMazeCampaignEquivalence:
    def test_serial_pooled_cached_byte_identical(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        serial = run_campaign(maze_campaign())
        pooled = run_campaign(maze_campaign(), workers=2)
        warm = run_campaign(maze_campaign(), cache=cache)
        cached = run_campaign(maze_campaign(), cache=cache)
        assert cached.execution.executed == 0
        assert (
            serial.to_json()
            == pooled.to_json()
            == warm.to_json()
            == cached.to_json()
        )

    def test_pool_can_serve_a_cache_filled_serially(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        warm = run_campaign(maze_campaign(), cache=cache)
        pooled_hit = run_campaign(maze_campaign(), workers=2, cache=cache)
        assert pooled_hit.execution.executed == 0
        assert pooled_hit.to_json() == warm.to_json()


class TestTable1Equivalence:
    def maps_of(self, result):
        return [(r.testing_dataset, r.finetuned, r.format, r.map_by_width)
                for r in result.rows]

    def states_of(self, result):
        return {
            w: det.state_dict() for w, det in sorted(result.detectors.items())
        }

    def assert_same(self, a, b):
        assert self.maps_of(a) == self.maps_of(b)
        for w in a.detectors:
            sa, sb = a.detectors[w].state_dict(), b.detectors[w].state_dict()
            assert sorted(sa) == sorted(sb)
            for name in sa:
                np.testing.assert_array_equal(sa[name], sb[name])
            qa = a.int8_detectors[w].state_dict()
            qb = b.int8_detectors[w].state_dict()
            for name in qa:
                np.testing.assert_array_equal(qa[name], qb[name])

    def test_serial_pooled_cached_same_floats(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        serial = table1.run(TINY_TRAIN, seed=0)
        pooled = table1.run(TINY_TRAIN, seed=0, workers=2)
        warm = table1.run(TINY_TRAIN, seed=0, cache=cache)
        cached = table1.run(TINY_TRAIN, seed=0, cache=cache)
        assert cache.hits == len(TINY_TRAIN.widths)
        self.assert_same(serial, pooled)
        self.assert_same(serial, warm)
        self.assert_same(serial, cached)

    def test_scale_change_busts_training_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        table1.run(TINY_TRAIN, seed=0, cache=cache)
        bigger = quick(TINY_TRAIN, finetune_epochs=2)
        table1.run(bigger, seed=0, cache=cache)
        assert cache.stores == 2 * len(TINY_TRAIN.widths)

    def test_flight_knobs_do_not_bust_training_cache(self, tmp_path):
        # n_runs / flight_time_s / the scale's name are flight-side
        # knobs the training never reads; the job hash must ignore them.
        cache = ResultCache(str(tmp_path))
        table1.run(TINY_TRAIN, seed=0, cache=cache)
        flight_changed = quick(
            TINY_TRAIN, n_runs=5, flight_time_s=90.0, name="other"
        )
        table1.run(flight_changed, seed=0, cache=cache)
        assert cache.hits == len(TINY_TRAIN.widths)
        assert cache.stores == len(TINY_TRAIN.widths)


class TestFig3Equivalence:
    def test_serial_pooled_cached_same_heatmaps(self, tmp_path):
        scale = quick(SMOKE_SCALE, flight_time_s=10.0)
        cache = ResultCache(str(tmp_path))
        serial = fig3.run(scale)
        pooled = fig3.run(scale, workers=2)
        warm = fig3.run(scale, cache=cache)
        cached = fig3.run(scale, cache=cache)
        assert serial.coverage == pooled.coverage == warm.coverage == cached.coverage
        assert (
            fig3.format_maps(serial)
            == fig3.format_maps(pooled)
            == fig3.format_maps(warm)
            == fig3.format_maps(cached)
        )
        for name, grid in serial.grids.items():
            np.testing.assert_array_equal(
                grid.occupancy_time, cached.grids[name].occupancy_time
            )
            assert grid.visited_count() == cached.grids[name].visited_count()
            # The rebuilt grid's own coverage agrees with the mission's
            # reported value (reachable-cell bookkeeping survives the
            # payload round trip).
            assert grid.coverage() == serial.coverage[name]
