"""Tests for the synthetic datasets and augmentations."""

import numpy as np
import pytest

from repro.datasets import (
    DetectionDataset,
    LabeledImage,
    himax_degrade,
    make_himax_like,
    make_openimages_like,
    photometric_augment,
    rebalance_with_translation,
)
from repro.datasets.augment import (
    adjust_brightness,
    flip_horizontal,
    random_crop,
    to_grayscale,
    translate_horizontal,
)
from repro.errors import ShapeError

RNG = np.random.default_rng(0)


class TestLabeledImage:
    def test_validation(self):
        with pytest.raises(ShapeError):
            LabeledImage(np.zeros((48, 64)), np.zeros((0, 4)), np.zeros(0))
        with pytest.raises(ShapeError):
            LabeledImage(np.zeros((3, 8, 8)), np.zeros((1, 4)), np.zeros(2))


class TestGenerators:
    def test_openimages_like_properties(self):
        ds = make_openimages_like(20, hw=(48, 64), seed=0)
        assert len(ds) == 20
        for item in ds:
            assert item.image.shape == (3, 48, 64)
            assert item.image.min() >= 0.0 and item.image.max() <= 1.0
            assert item.boxes.shape[0] == item.labels.shape[0] >= 1
            assert np.all(item.boxes[:, 2] > item.boxes[:, 0])
            assert np.all(item.boxes[:, 3] > item.boxes[:, 1])
            assert np.all(item.boxes >= 0.0) and np.all(item.boxes <= 1.0)
            assert set(item.labels.tolist()) <= {0, 1}

    def test_class_imbalance_matches_paper(self):
        ds = make_openimages_like(200, seed=1)
        bottles, cans = ds.class_counts()
        assert bottles > 5 * cans  # the paper's subset is ~9:1

    def test_himax_is_grayscale(self):
        ds = make_himax_like(5, seed=2)
        for item in ds:
            np.testing.assert_allclose(item.image[0], item.image[1])
            np.testing.assert_allclose(item.image[1], item.image[2])

    def test_domains_differ(self):
        clean = make_openimages_like(5, seed=3)
        degraded = make_himax_like(5, seed=3)
        # The degradation visibly changes pixel statistics.
        assert abs(clean[0].image.std() - degraded[0].image.std()) > 0.0

    def test_reproducible(self):
        a = make_openimages_like(3, seed=7)
        b = make_openimages_like(3, seed=7)
        np.testing.assert_array_equal(a[0].image, b[0].image)

    def test_himax_degrade_shapes(self):
        img = RNG.uniform(size=(3, 48, 64))
        out = himax_degrade(img, np.random.default_rng(0))
        assert out.shape == (3, 48, 64)
        assert out.min() >= 0.0 and out.max() <= 1.0


class TestDataset:
    def test_split_partitions(self):
        ds = make_openimages_like(20, seed=0)
        a, b = ds.split([0.75, 0.25], seed=1)
        assert len(a) + len(b) == 20
        assert len(a) == 15

    def test_split_validation(self):
        ds = make_openimages_like(4, seed=0)
        with pytest.raises(ValueError):
            ds.split([0.5, 0.2])

    def test_batches(self):
        ds = make_openimages_like(10, seed=0)
        batches = list(ds.batches(4))
        assert [b[0].shape[0] for b in batches] == [4, 4, 2]
        images, boxes, labels = batches[0]
        assert images.shape[1:] == (3, 48, 64)
        assert len(boxes) == len(labels) == 4

    def test_batches_shuffled(self):
        ds = make_openimages_like(10, seed=0)
        plain = next(iter(ds.batches(10)))[0]
        shuffled = next(iter(ds.batches(10, np.random.default_rng(3))))[0]
        assert not np.array_equal(plain, shuffled)


class TestAugmentations:
    def _item(self):
        return make_openimages_like(1, seed=5)[0]

    def test_flip_involution(self):
        item = self._item()
        img2, boxes2 = flip_horizontal(*flip_horizontal(item.image, item.boxes))
        np.testing.assert_allclose(img2, item.image)
        np.testing.assert_allclose(boxes2, item.boxes)

    def test_flip_boxes_valid(self):
        item = self._item()
        _, boxes = flip_horizontal(item.image, item.boxes)
        assert np.all(boxes[:, 2] > boxes[:, 0])

    def test_brightness_clips(self):
        img = adjust_brightness(np.full((3, 4, 4), 0.9), 2.0)
        assert img.max() == 1.0

    def test_grayscale_channels_equal(self):
        g = to_grayscale(self._item().image)
        np.testing.assert_allclose(g[0], g[2])

    def test_random_crop_keeps_resolution(self):
        item = self._item()
        img, boxes, labels = random_crop(
            item.image, item.boxes, item.labels, np.random.default_rng(0)
        )
        assert img.shape == item.image.shape
        assert boxes.shape[0] == labels.shape[0]
        if boxes.size:
            assert np.all(boxes >= 0.0) and np.all(boxes <= 1.0)

    def test_photometric_augment_valid(self):
        for seed in range(10):
            out = photometric_augment(self._item(), np.random.default_rng(seed))
            assert out.image.shape == (3, 48, 64)
            assert out.image.min() >= 0.0 and out.image.max() <= 1.0

    def test_translate_horizontal(self):
        item = self._item()
        out = translate_horizontal(item, np.random.default_rng(1))
        assert out.image.shape == item.image.shape
        if out.boxes.size:
            assert np.all(out.boxes >= 0.0) and np.all(out.boxes <= 1.0)


class TestRebalancing:
    def test_improves_balance(self):
        ds = make_openimages_like(100, seed=0)
        before = ds.class_counts()
        after = rebalance_with_translation(ds, seed=1).class_counts()
        ratio_before = before[0] / max(before[1], 1)
        ratio_after = after[0] / max(after[1], 1)
        assert ratio_after < ratio_before

    def test_no_minority_noop(self):
        ds = make_openimages_like(10, seed=0, bottle_fraction=1.0)
        out = rebalance_with_translation(ds, seed=1)
        assert len(out) == len(ds)
