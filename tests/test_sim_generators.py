"""Tests for the parametric scenario families (repro.sim.generators)."""

import multiprocessing

import numpy as np
import pytest

from repro.errors import SimError
from repro.sim import (
    Campaign,
    GeneratedSpec,
    RoomSpec,
    Scenario,
    ScenarioFamily,
    ascii_layout,
    family_names,
    generate_scenario,
    get_family,
    get_scenario,
    register_family,
    register_scenario,
    run_campaign,
    scenario_names,
)
from repro.sim.generators import (
    VALIDATION_MARGIN_M,
    ParamSpec,
    _raster_resolution,
    flood_fill,
    free_space_mask,
)

FAMILIES = ("cluttered-warehouse", "perfect-maze", "random-apartment", "scatter-field")

#: Parameter points sampled per family by the validity sweep.
N_SAMPLE_POINTS = 50


def _sample_params(family, rng):
    """One uniformly drawn parameter point within the family's bounds."""
    params = {}
    for p in family.params:
        if p.integer:
            params[p.name] = int(rng.integers(int(p.low), int(p.high) + 1))
        else:
            params[p.name] = float(rng.uniform(p.low, p.high))
    return params


def _hash_spec(args):
    family, params, seed = args
    return generate_scenario(family, params, seed).content_hash()


class TestRegistry:
    def test_builtin_families_registered(self):
        assert family_names() == FAMILIES

    def test_get_family_unknown(self):
        with pytest.raises(SimError, match="unknown scenario family"):
            get_family("atlantis")

    def test_family_name_cannot_shadow_preset(self):
        fam = get_family("perfect-maze")
        clone = ScenarioFamily(
            name="paper-room",
            description="imposter",
            params=fam.params,
            builder=fam.builder,
        )
        with pytest.raises(SimError, match="would shadow the scenario"):
            register_family(clone)
        # overwrite does not license cross-kind shadowing either
        with pytest.raises(SimError, match="would shadow the scenario"):
            register_family(clone, overwrite=True)
        assert "paper-room" not in family_names()

    def test_preset_name_cannot_shadow_family(self):
        bad = Scenario(name="perfect-maze", room=RoomSpec(width=4.0, length=4.0))
        with pytest.raises(SimError, match="would shadow the scenario family"):
            register_scenario(bad)
        with pytest.raises(SimError, match="would shadow the scenario family"):
            register_scenario(bad, overwrite=True)
        assert "perfect-maze" not in scenario_names()

    def test_duplicate_family_needs_overwrite(self):
        fam = get_family("perfect-maze")
        with pytest.raises(SimError, match="already registered"):
            register_family(fam)
        assert register_family(fam, overwrite=True) is fam

    def test_get_scenario_points_at_family(self):
        with pytest.raises(SimError, match="is a scenario family"):
            get_scenario("perfect-maze")


class TestParamSchema:
    def test_defaults_within_bounds(self):
        for name in FAMILIES:
            family = get_family(name)
            resolved = family.resolve()
            for p in family.params:
                assert p.low <= resolved[p.name] <= p.high

    def test_unknown_param_rejected(self):
        with pytest.raises(SimError, match="has no param"):
            get_family("perfect-maze").resolve({"spiral": 3})

    def test_out_of_bounds_rejected(self):
        with pytest.raises(SimError, match="outside"):
            get_family("perfect-maze").resolve({"cols": 1000})

    def test_non_number_rejected(self):
        with pytest.raises(SimError, match="expected a number"):
            get_family("perfect-maze").resolve({"cols": "many"})

    def test_integer_params_coerced(self):
        resolved = get_family("perfect-maze").resolve({"cols": 6.0})
        assert resolved["cols"] == 6 and isinstance(resolved["cols"], int)

    def test_param_spec_validation(self):
        with pytest.raises(SimError, match="inverted"):
            ParamSpec("x", 1.0, 2.0, 0.0)
        with pytest.raises(SimError, match="outside"):
            ParamSpec("x", 5.0, 0.0, 1.0)


class TestDeterminism:
    def test_same_triple_same_scenario(self):
        for name in FAMILIES:
            a = generate_scenario(name, seed=7)
            b = generate_scenario(name, seed=7)
            assert a == b, name
            assert a.content_hash() == b.content_hash(), name

    def test_different_seeds_differ(self):
        for name in FAMILIES:
            assert (
                generate_scenario(name, seed=0).content_hash()
                != generate_scenario(name, seed=1).content_hash()
            ), name

    def test_params_change_the_world(self):
        base = generate_scenario("perfect-maze", seed=0)
        other = generate_scenario("perfect-maze", {"cols": 5}, seed=0)
        assert base.content_hash() != other.content_hash()

    def test_hash_identical_across_processes(self):
        """Same (family, params, seed) => same scenario hash in a worker."""
        jobs = [
            ("perfect-maze", {"cols": 6, "rows": 5}, 3),
            ("random-apartment", {"width": 8.0}, 11),
            ("cluttered-warehouse", {}, 2),
            ("scatter-field", {"n_items": 20}, 5),
        ]
        parent = [_hash_spec(job) for job in jobs]
        try:
            with multiprocessing.Pool(2) as pool:
                child = pool.map(_hash_spec, jobs)
        except (OSError, ValueError):  # pragma: no cover - env specific
            pytest.skip("cannot fork a pool in this environment")
        assert child == parent


class TestValidity:
    @pytest.mark.parametrize("family_name", FAMILIES)
    def test_sampled_parameter_points_yield_valid_worlds(self, family_name):
        """>= 50 sampled parameter points per family generate, validate,
        and pass the flood-fill / start / reachability contract."""
        family = get_family(family_name)
        # zlib.crc32 is stable across processes (hash() is randomized),
        # so the 50 sampled points are the same in every run.
        import zlib

        rng = np.random.default_rng(zlib.crc32(family_name.encode("utf-8")))
        for i in range(N_SAMPLE_POINTS):
            params = _sample_params(family, rng)
            scenario = family.generate(params, seed=i)
            # generate() validates internally; re-check the externally
            # observable contract.
            scenario.validate()
            room = scenario.build_room()
            assert room.is_free(scenario.start_position(), margin=0.1), (
                family_name,
                i,
            )
            assert len(scenario.objects) == params["n_objects"]
            names = [o.name for o in scenario.objects]
            assert len(set(names)) == len(names)

    @pytest.mark.parametrize("family_name", FAMILIES)
    def test_objects_reachable_from_start(self, family_name):
        scenario = generate_scenario(family_name, seed=13)
        room = scenario.build_room()
        passage = 2.0 * VALIDATION_MARGIN_M + 2.0 * 0.08
        res = _raster_resolution(passage)
        free = free_space_mask(room, res)
        sx, sy = scenario.start
        start_cell = (
            min(free.shape[0] - 1, int(sy / room.length * free.shape[0])),
            min(free.shape[1] - 1, int(sx / room.width * free.shape[1])),
        )
        reach = flood_fill(free, start_cell)
        assert reach.any()
        for obj in scenario.objects:
            iy = min(free.shape[0] - 1, int(obj.y / room.length * free.shape[0]))
            ix = min(free.shape[1] - 1, int(obj.x / room.width * free.shape[1]))
            # This raster differs from the generator's own (coarser
            # passage estimate), so the object's exact cell centre may
            # be conservatively blocked; any touching cell reachable is
            # the meaningful contract.
            neighbourhood = reach[
                max(0, iy - 1) : iy + 2, max(0, ix - 1) : ix + 2
            ]
            assert neighbourhood.any(), (family_name, obj.name)

    def test_mazes_and_warehouses_reach_1000_segments(self):
        maze = generate_scenario(
            "perfect-maze", {"cols": 24, "rows": 18, "cell_m": 1.0}, seed=5
        )
        assert len(maze.build_room().all_segments()) >= 1000
        depot = generate_scenario(
            "cluttered-warehouse",
            {"width": 40.0, "length": 30.0, "aisle": 1.2, "shelf_depth": 0.5, "unit_len": 1.0},
            seed=5,
        )
        assert len(depot.build_room().all_segments()) >= 1000


class TestFloodFill:
    def test_blocked_seed_reaches_nothing(self):
        free = np.zeros((4, 4), dtype=bool)
        assert not flood_fill(free, (0, 0)).any()

    def test_wall_splits_components(self):
        free = np.ones((5, 5), dtype=bool)
        free[:, 2] = False
        reach = flood_fill(free, (0, 0))
        assert reach[:, :2].all()
        assert not reach[:, 3:].any()


class TestGeneratedSpec:
    def test_create_canonicalizes_params(self):
        a = GeneratedSpec.create("perfect-maze", {"rows": 5, "cols": 6}, seed=1)
        b = GeneratedSpec.create("perfect-maze", {"cols": 6, "rows": 5}, seed=1)
        assert a == b

    def test_create_coerces_values_for_stable_hashing(self):
        # {'cols': 5} and {'cols': 5.0} realize identical worlds, so
        # they must be the same spec (and hash-key the same result file).
        a = GeneratedSpec.create("perfect-maze", {"cols": 5}, seed=1)
        b = GeneratedSpec.create("perfect-maze", {"cols": 5.0}, seed=1)
        assert a == b
        assert a.to_dict() == b.to_dict()

    def test_create_validates_early(self):
        with pytest.raises(SimError, match="unknown scenario family"):
            GeneratedSpec.create("atlantis")
        with pytest.raises(SimError, match="has no param"):
            GeneratedSpec.create("perfect-maze", {"nope": 1})

    def test_realize_matches_generate(self):
        spec = GeneratedSpec.create("scatter-field", {"n_items": 12}, seed=9)
        assert (
            spec.realize().content_hash()
            == generate_scenario("scatter-field", {"n_items": 12}, seed=9).content_hash()
        )

    def test_dict_round_trip(self):
        spec = GeneratedSpec.create("perfect-maze", {"cols": 6}, seed=4)
        assert GeneratedSpec.from_dict(spec.to_dict()) == spec

    def test_spec_is_picklable(self):
        import pickle

        spec = GeneratedSpec.create("perfect-maze", {"cols": 6}, seed=4)
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestGeneratedCampaigns:
    def _campaign(self, **overrides):
        defaults = dict(
            name="gen",
            generated=(GeneratedSpec.create("perfect-maze", {"cols": 5, "rows": 4}, seed=1),),
            n_runs=2,
            flight_time_s=8.0,
            seed=3,
        )
        defaults.update(overrides)
        return Campaign(**defaults)

    def test_campaign_needs_some_scenario(self):
        with pytest.raises(SimError, match="at least one scenario"):
            Campaign(name="empty")

    def test_generated_missions_carry_provenance(self):
        campaign = self._campaign()
        missions = campaign.missions()
        assert len(missions) == 2
        for m in missions:
            assert m.generator is not None
            assert m.generator.family == "perfect-maze"
            assert m.scenario.name.startswith("perfect-maze-s1-")

    def test_mixed_campaign_expands_both(self):
        campaign = self._campaign(scenarios=(get_scenario("paper-room"),))
        missions = campaign.missions()
        assert len(missions) == 4
        assert missions[0].generator is None
        assert missions[-1].generator is not None

    def test_hash_covers_generator_reference(self):
        base = self._campaign()
        assert (
            self._campaign(
                generated=(
                    GeneratedSpec.create("perfect-maze", {"cols": 5, "rows": 4}, seed=2),
                )
            ).campaign_hash()
            != base.campaign_hash()
        )
        assert (
            self._campaign(
                generated=(
                    GeneratedSpec.create("perfect-maze", {"cols": 6, "rows": 4}, seed=1),
                )
            ).campaign_hash()
            != base.campaign_hash()
        )

    def test_preset_campaign_hash_unchanged_by_generated_field(self):
        """Adding the feature must not re-key existing result files."""
        preset = Campaign(name="p", scenarios=(get_scenario("paper-room"),))
        assert "generated" not in preset.to_dict()

    def test_rerun_reproduces_identical_aggregates(self):
        campaign = self._campaign()
        r1 = run_campaign(campaign)
        r2 = run_campaign(campaign)
        assert [rec.to_dict() for rec in r1.records] == [
            rec.to_dict() for rec in r2.records
        ]
        assert r1.aggregate(("scenario",), value="coverage") == r2.aggregate(
            ("scenario",), value="coverage"
        )

    def test_serial_equals_pooled(self):
        campaign = self._campaign()
        serial = run_campaign(campaign)
        pooled = run_campaign(campaign, workers=2)
        assert [rec.to_dict() for rec in serial.records] == [
            rec.to_dict() for rec in pooled.records
        ]


class TestAsciiLayout:
    def test_marks_and_frame(self):
        scenario = generate_scenario("perfect-maze", {"cols": 5, "rows": 4}, seed=2)
        art = ascii_layout(scenario, 48)
        lines = art.splitlines()
        assert lines[0].startswith("+") and lines[-1].startswith("+")
        body = "".join(lines[1:-1])
        assert "S" in body
        assert "#" in body
        assert ("B" in body) or ("C" in body)

    def test_deterministic(self):
        scenario = generate_scenario("scatter-field", {"n_items": 10}, seed=2)
        assert ascii_layout(scenario) == ascii_layout(scenario)
