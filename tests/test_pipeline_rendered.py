"""Tests for the rendered-frame detection channel."""

import numpy as np
import pytest

from repro.drone.dynamics import DroneState
from repro.geometry.vec import Vec2
from repro.sensors.camera import HimaxCamera
from repro.vision import SSDDetector, tiny_spec
from repro.vision.pipeline import RenderedDetectorChannel
from repro.world import ObjectClass, SceneObject, paper_room


@pytest.fixture(scope="module")
def channel():
    return RenderedDetectorChannel(SSDDetector(tiny_spec(0.5)))


def observe(room, position, heading, objects):
    return HimaxCamera().observe(room.raycaster, position, heading, objects)


class TestRenderedChannel:
    def test_render_frame_shape(self, channel):
        room = paper_room()
        objs = [SceneObject(ObjectClass.BOTTLE, Vec2(3.0, 2.75))]
        obs = observe(room, Vec2(1.5, 2.75), 0.0, objs)
        assert obs, "object should be visible for this pose"
        state = DroneState(Vec2(1.5, 2.75), 0.0)
        frame = channel.render_frame(obs, state)
        assert frame.shape == (3, 48, 64)
        assert frame.min() >= 0.0 and frame.max() <= 1.0
        # The Himax domain is grayscale: channels identical.
        np.testing.assert_allclose(frame[0], frame[1])

    def test_empty_observations_no_detection(self, channel):
        state = DroneState(Vec2(1.0, 1.0), 0.0)
        assert channel.detect([], state, np.random.default_rng(0)) == []

    def test_detect_returns_subset(self, channel):
        room = paper_room()
        objs = [
            SceneObject(ObjectClass.BOTTLE, Vec2(3.0, 2.75)),
            SceneObject(ObjectClass.TIN_CAN, Vec2(3.0, 3.2)),
        ]
        obs = observe(room, Vec2(1.5, 2.75), 0.0, objs)
        state = DroneState(Vec2(1.5, 2.75), 0.0)
        detected = channel.detect(obs, state, np.random.default_rng(0))
        names = {d.obj.name for d in detected}
        assert names <= {o.obj.name for o in obs}
