"""Tests for the viz exporters, battery model, and the CLI runner."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.geometry.vec import Vec2
from repro.hw.battery import Battery, CRAZYFLIE_BATTERY_WH
from repro.mapping.mocap import MotionCaptureTracker, TrackedSample
from repro.mapping.occupancy import OccupancyGrid
from repro.mission.closed_loop import DetectionEvent
from repro.viz import heatmap_to_pgm, trajectory_to_svg, write_pgm
from repro.world import Room, cluttered_room, paper_object_layout, paper_room


class TestPGM:
    def _grid(self):
        grid = OccupancyGrid(Room(2.0, 1.0), cell_size=0.5)
        grid.record(Vec2(0.25, 0.25), 9.0)
        grid.record(Vec2(1.75, 0.75), 18.0)
        return grid

    def test_image_geometry(self):
        img = heatmap_to_pgm(self._grid(), cell_px=4)
        assert img.shape == (2 * 4, 4 * 4)
        assert img.dtype == np.uint8

    def test_unvisited_black_visited_bright(self):
        img = heatmap_to_pgm(self._grid(), cell_px=1)
        # Grid row 0 (south) renders as the bottom image row.
        assert img[1, 0] > 0  # visited south-west cell
        assert img[1, 1] == 0  # unvisited
        assert img[0, 3] == 255  # saturated cell at the cap

    def test_write_pgm(self, tmp_path):
        img = heatmap_to_pgm(self._grid())
        path = tmp_path / "map.pgm"
        write_pgm(img, path)
        data = path.read_bytes()
        assert data.startswith(b"P5\n")
        w, h = img.shape[1], img.shape[0]
        assert f"{w} {h}".encode() in data
        assert len(data) == data.index(b"255\n") + 4 + w * h

    def test_write_pgm_validates(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(np.zeros((2, 2)), tmp_path / "bad.pgm")


class TestSVG:
    def _samples(self):
        return [
            TrackedSample(time=t, position=Vec2(1.0 + t * 0.1, 1.0), heading=0.0)
            for t in np.linspace(0.0, 30.0, 50)
        ]

    def test_valid_document(self):
        svg = trajectory_to_svg(paper_room(), self._samples(), title="run 1")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert "polyline" in svg
        assert "run 1" in svg

    def test_objects_and_events_marked(self):
        objects = paper_object_layout()
        events = [
            DetectionEvent(
                object_name=objects[0].name,
                object_class="bottle",
                time_s=10.0,
                distance_m=1.0,
            )
        ]
        svg = trajectory_to_svg(paper_room(), self._samples(), objects, events)
        # 6 object dots + 1 detection ring + 1 start marker.
        assert svg.count("<circle") == 8

    def test_obstacles_drawn(self):
        room = cluttered_room(n_obstacles=3, seed=0)
        svg = trajectory_to_svg(room, self._samples())
        assert svg.count("c0c0c0") == 3


class TestBattery:
    def test_crazyflie_endurance(self):
        # ~0.925 Wh at 85% usable over 8.02 W -> ~5.9 min: one 3-minute
        # mission per battery with margin, as the paper flies.
        endurance = Battery().endurance_s(8.02)
        assert 300.0 < endurance < 420.0

    def test_supports_paper_mission(self):
        assert Battery().supports_mission(8.02, 180.0, reserve=0.2)
        assert not Battery().supports_mission(8.02, 600.0)

    def test_validation(self):
        with pytest.raises(ReproError):
            Battery(capacity_wh=0.0)
        with pytest.raises(ReproError):
            Battery().endurance_s(0.0)
        with pytest.raises(ReproError):
            Battery().supports_mission(8.0, 60.0, reserve=1.5)

    def test_capacity_constant(self):
        assert CRAZYFLIE_BATTERY_WH == pytest.approx(0.925)


class TestCLI:
    def test_list(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table2" in out and "fig6" in out

    def test_run_table2(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table2", "table4"]) == 0
        out = capsys.readouterr().out
        assert "MMAC" in out and "Motors" in out

    def test_unknown_rejected(self):
        from repro.experiments.__main__ import main

        with pytest.raises(SystemExit):
            main(["table9"])
