"""Unit tests of the execution layer: JobSpec, ResultCache, Executor."""

import json
import os

import numpy as np
import pytest

from repro.errors import ExecError
from repro.exec import (
    CACHE_SCHEMA,
    Executor,
    JobSpec,
    ResultCache,
    canonical_value,
    default_cache_dir,
    json_roundtrip,
    resolve_workers,
)
from repro.exec.demo import scaled_sum, seeded_normals


def demo_job(n=2, entropy=5, key=(0,), version="v1", label=""):
    return JobSpec(
        fn="repro.exec.demo:seeded_normals",
        kwargs={"n": n},
        seed_entropy=entropy,
        spawn_key=key,
        version=version,
        label=label,
    )


class TestCanonicalValue:
    def test_plain_data_passes_through(self):
        assert canonical_value({"a": 1, "b": [1.5, None, True, "x"]}) == {
            "a": 1,
            "b": [1.5, None, True, "x"],
        }

    def test_tuples_become_lists(self):
        assert canonical_value((1, (2, 3))) == [1, [2, 3]]

    def test_numpy_scalars_become_python(self):
        out = canonical_value({"f": np.float64(0.5), "i": np.int64(3)})
        assert out == {"f": 0.5, "i": 3}
        assert type(out["f"]) is float and type(out["i"]) is int

    def test_rejects_live_objects(self):
        with pytest.raises(ExecError, match="no canonical JSON form"):
            canonical_value({"arr": np.zeros(3)})

    def test_rejects_non_string_keys(self):
        with pytest.raises(ExecError, match="keys must be strings"):
            canonical_value({1.0: "x"})


class TestJobSpec:
    def test_hash_is_stable_and_label_free(self):
        a = demo_job(label="one")
        b = demo_job(label="two")
        assert a.content_hash() == b.content_hash()

    def test_hash_covers_kwargs_seed_and_version(self):
        base = demo_job().content_hash()
        assert demo_job(n=3).content_hash() != base
        assert demo_job(entropy=6).content_hash() != base
        assert demo_job(key=(1,)).content_hash() != base
        assert demo_job(version="v2").content_hash() != base

    def test_kwargs_canonicalized_at_construction(self):
        job = JobSpec(fn="repro.exec.demo:scaled_sum",
                      kwargs={"values": (1, 2), "factor": np.float64(2.0)})
        assert job.kwargs == {"values": [1, 2], "factor": 2.0}

    def test_roundtrips_through_dict(self):
        job = demo_job()
        assert JobSpec.from_dict(job.to_dict()) == job

    def test_bad_fn_rejected(self):
        with pytest.raises(ExecError):
            JobSpec(fn="")
        with pytest.raises(ExecError):
            JobSpec(fn="nodots")

    def test_resolve_errors(self):
        with pytest.raises(ExecError, match="cannot import"):
            JobSpec(fn="repro.no_such_module:f").resolve()
        with pytest.raises(ExecError, match="no attribute"):
            JobSpec(fn="repro.exec.demo:no_such_fn").resolve()
        with pytest.raises(ExecError, match="not callable"):
            JobSpec(fn="repro.exec.cache:CACHE_SCHEMA").resolve()

    def test_legacy_dotted_fn_form_resolves(self):
        job = JobSpec(fn="repro.exec.demo.scaled_sum", kwargs={"values": [2.0]})
        assert job.run() == 2.0

    def test_run_injects_seed_provenance(self):
        job = demo_job(n=4, entropy=9, key=(2,))
        expected = seeded_normals(4, np.random.SeedSequence(9, spawn_key=(2,)))
        assert job.run() == expected

    def test_unseeded_job_gets_no_seed_kwarg(self):
        job = JobSpec(fn="repro.exec.demo:scaled_sum",
                      kwargs={"values": [1.0, 2.0], "factor": 3.0})
        assert job.run() == scaled_sum([1.0, 2.0], 3.0) == 9.0


class TestResultCache:
    def test_miss_then_put_then_hit(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = demo_job()
        value, hit = cache.get(job)
        assert not hit
        cache.put(job, job.run())
        value, hit = cache.get(job)
        assert hit and value == json_roundtrip(job.run())
        assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)

    def test_entry_file_layout_is_hash_sharded(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = demo_job()
        path = cache.put(job, 1.0)
        h = job.content_hash()
        assert path == os.path.join(str(tmp_path), h[:2], f"{h}.json")
        assert os.path.exists(path)

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = demo_job()
        path = cache.put(job, 1.0)
        with open(path, "w") as fh:
            fh.write("{not json")
        assert cache.get(job) == (None, False)

    def test_schema_mismatch_reads_as_miss(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = demo_job()
        path = cache.put(job, 1.0)
        with open(path) as fh:
            data = json.load(fh)
        data["schema"] = "repro.exec.result/v0"
        with open(path, "w") as fh:
            json.dump(data, fh)
        assert cache.get(job) == (None, False)

    def test_foreign_job_identity_reads_as_miss(self, tmp_path):
        # A file at the right path but describing a different job (hash
        # collision / hand-edit) must not be served.
        cache = ResultCache(str(tmp_path))
        job = demo_job()
        path = cache.put(job, 1.0)
        with open(path) as fh:
            data = json.load(fh)
        data["job"]["kwargs"]["n"] = 99
        with open(path, "w") as fh:
            json.dump(data, fh)
        assert cache.get(job) == (None, False)

    def test_stats_and_clear(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        for i in range(3):
            cache.put(demo_job(key=(i,)), [float(i)])
        stats = cache.stats()
        assert stats.entries == 3 and stats.total_bytes > 0
        assert cache.clear() == 3
        assert cache.stats() == (0, 0, (), 0, 0)

    def test_cache_files_are_deterministic(self, tmp_path):
        job = demo_job()
        a = ResultCache(str(tmp_path / "a"))
        b = ResultCache(str(tmp_path / "b"))
        pa = a.put(job, job.run())
        pb = b.put(job, job.run())
        with open(pa, "rb") as fa, open(pb, "rb") as fb:
            assert fa.read() == fb.read()

    def test_default_cache_dir_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", "/tmp/somewhere")
        assert default_cache_dir() == "/tmp/somewhere"
        monkeypatch.delenv("REPRO_CACHE_DIR")
        assert default_cache_dir() == ".repro-cache"


class TestExecutor:
    def jobs(self, n=4):
        return [demo_job(key=(i,)) for i in range(n)]

    def test_results_in_job_order(self):
        results = Executor().run(self.jobs())
        expected = [
            seeded_normals(2, np.random.SeedSequence(5, spawn_key=(i,)))
            for i in range(4)
        ]
        assert results == expected

    def test_pooled_equals_serial(self):
        jobs = self.jobs(6)
        serial = Executor(workers=None).run(jobs)
        pooled = Executor(workers=2).run(jobs)
        assert serial == pooled

    def test_resolve_workers(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(0) >= 1
        with pytest.raises(ExecError):
            resolve_workers(-2)

    def test_duplicate_jobs_execute_once(self, tmp_path):
        job = demo_job()
        executor = Executor()
        results = executor.run([job, job, job])
        assert results[0] == results[1] == results[2]
        report = executor.last_report
        assert report.total == 3 and report.executed == 1 and report.cached == 2

    def test_error_propagates_serial_and_pooled(self):
        bad = JobSpec(fn="repro.exec.demo:always_fails", kwargs={"message": "nope"})
        with pytest.raises(ExecError, match="nope"):
            Executor().run([bad])
        with pytest.raises(ExecError, match="nope"):
            Executor(workers=2).run([bad, demo_job()])

    def test_cache_makes_second_run_execution_free(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        jobs = self.jobs()
        first = Executor(cache=cache)
        r1 = first.run(jobs)
        assert first.last_report.executed == 4
        second = Executor(cache=cache)
        r2 = second.run(jobs)
        assert r1 == r2
        assert second.last_report.executed == 0
        assert second.last_report.cached == 4

    def test_progress_fires_once_per_job(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        jobs = self.jobs(3)
        Executor(cache=cache).run(jobs[:2])
        events = []
        Executor(cache=cache).run(
            jobs, progress=lambda done, total, job, result, cached: events.append(
                (done, total, cached)
            )
        )
        assert [e[0] for e in events] == [1, 2, 3]
        assert all(e[1] == 3 for e in events)
        # two cache hits first, then the fresh execution
        assert [e[2] for e in events] == [True, True, False]

    def test_report_summary_reads_well(self):
        executor = Executor()
        executor.run(self.jobs(2))
        assert "2 jobs: 0 cached, 2 executed" in executor.last_report.summary()


class TestExtraSideChannel:
    def test_extra_excluded_from_hash_and_dict(self):
        plain = demo_job()
        extra = JobSpec(
            fn="repro.exec.demo:seeded_normals",
            kwargs={"n": 2},
            seed_entropy=5,
            spawn_key=(0,),
            version="v1",
            extra={"note": "side-channel"},
        )
        assert extra.content_hash() == plain.content_hash()
        assert extra.to_dict() == plain.to_dict()

    def test_extra_keys_may_not_shadow_kwargs(self):
        with pytest.raises(ExecError, match="shadow"):
            JobSpec(
                fn="repro.exec.demo:scaled_sum",
                kwargs={"values": [1.0], "factor": 2.0},
                extra={"factor": 3.0},
            )

    def test_extra_is_passed_to_the_callable(self):
        # scaled_sum(values, factor): feed factor through extra only.
        job = JobSpec(
            fn="repro.exec.demo:scaled_sum",
            kwargs={"values": [1.0, 2.0]},
            extra={"factor": 3.0},
        )
        assert job.run() == 9.0


class TestRefreshAndTimings:
    def test_refresh_forces_reexecution_and_restores_byte_identical(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = demo_job()
        Executor(cache=cache).run([job])
        entry = cache.entry_path(job.content_hash())
        with open(entry, "rb") as fh:
            before = fh.read()
        refreshed = Executor(cache=cache)
        refreshed.run([job], refresh=lambda j: True)
        assert refreshed.last_report.executed == 1
        with open(entry, "rb") as fh:
            assert fh.read() == before

    def test_refresh_false_still_hits_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = demo_job()
        Executor(cache=cache).run([job])
        executor = Executor(cache=cache)
        executor.run([job], refresh=lambda j: False)
        assert executor.last_report.executed == 0

    def test_report_carries_job_timings(self):
        executor = Executor()
        executor.run([demo_job(key=(i,), label=f"job {i}") for i in range(3)])
        report = executor.last_report
        assert report.job_min_s <= report.job_mean_s <= report.job_max_s
        assert report.slowest_label.startswith("job ")
        assert "min/mean/max" in report.timings_summary()
        assert report.slowest_label in report.timings_summary()

    def test_timings_summary_empty_without_executions(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        Executor(cache=cache).run([demo_job()])
        executor = Executor(cache=cache)
        executor.run([demo_job()])
        assert executor.last_report.timings_summary() == ""


class TestCacheInventory:
    def test_stats_breaks_entries_down_by_version(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(demo_job(key=(0,), version="a/v1"), 1.0)
        cache.put(demo_job(key=(1,), version="a/v1"), 2.0)
        cache.put(demo_job(key=(2,), version="b/v1"), 3.0)
        stats = cache.stats()
        assert stats.entries == 3
        by_version = {v: (n, b) for v, n, b in stats.by_version}
        assert by_version["a/v1"][0] == 2
        assert by_version["b/v1"][0] == 1
        assert sum(b for _, b in by_version.values()) == stats.total_bytes

    def test_load_entry_returns_raw_document(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = demo_job()
        cache.put(job, [4.0])
        entry = cache.load_entry(job.content_hash())
        assert entry["schema"] == CACHE_SCHEMA
        assert entry["job"] == job.to_dict()
        assert entry["result"] == [4.0]
        assert cache.load_entry("0" * 64) is None
