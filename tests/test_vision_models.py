"""Tests for the MobileNetV2 backbone and the SSD detector."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.vision import (
    InvertedResidual,
    MobileNetV2Backbone,
    SSDDetector,
    full_scale_spec,
    make_divisible,
    tiny_spec,
)

RNG = np.random.default_rng(0)


class TestMakeDivisible:
    def test_multiples_of_8(self):
        for v in (8, 16, 24, 32.0, 100.0):
            assert make_divisible(v) % 8 == 0

    def test_never_drops_10_percent(self):
        for v in (12, 20, 28, 44, 100):
            assert make_divisible(v) >= 0.9 * v

    def test_known_values(self):
        assert make_divisible(32 * 0.75) == 24
        assert make_divisible(32 * 0.5) == 16
        assert make_divisible(16 * 0.5) == 8


class TestInvertedResidual:
    def test_residual_condition(self):
        assert InvertedResidual(8, 8, 1, 6, rng=RNG).use_residual
        assert not InvertedResidual(8, 16, 1, 6, rng=RNG).use_residual
        assert not InvertedResidual(8, 8, 2, 6, rng=RNG).use_residual

    def test_expand_ratio_1_skips_expansion(self):
        block = InvertedResidual(8, 8, 1, 1, rng=RNG)
        assert block.expand is None

    def test_output_shape(self):
        block = InvertedResidual(4, 10, 2, 6, rng=RNG)
        out = block.forward(RNG.normal(size=(2, 4, 8, 8)))
        assert out.shape == (2, 10, 4, 4)

    def test_bad_stride(self):
        with pytest.raises(ShapeError):
            InvertedResidual(4, 4, 3, 6)


class TestBackbone:
    def test_width_scaling(self):
        full = MobileNetV2Backbone(1.0)
        half = MobileNetV2Backbone(0.5)
        assert half.num_parameters() < full.num_parameters() * 0.5

    def test_tap_channels(self):
        bb = MobileNetV2Backbone(1.0)
        channels = bb.tap_channels()
        assert channels[-1] == 1280  # unscaled for alpha <= 1
        assert channels[0] == 96  # end of the stride-16 stage

    def test_forward_features_shapes(self):
        bb = MobileNetV2Backbone(
            1.0,
            config=((1, 8, 1, 1), (6, 16, 1, 2)),
            stem_channels=8,
            last_channels=32,
            tap_indices=(0,),
        )
        feats = bb.forward_features(RNG.normal(size=(1, 3, 16, 16)))
        assert len(feats) == 2
        assert feats[0].shape == (1, 8, 8, 8)
        assert feats[1].shape == (1, 32, 4, 4)

    def test_backward_features_shape(self):
        bb = MobileNetV2Backbone(
            1.0,
            config=((1, 8, 1, 1),),
            stem_channels=8,
            last_channels=16,
            tap_indices=(0,),
        )
        x = RNG.normal(size=(1, 3, 8, 8))
        feats = bb.forward_features(x)
        grads = [np.ones_like(f) for f in feats]
        gx = bb.backward_features(grads)
        assert gx.shape == x.shape

    def test_backward_requires_all_taps(self):
        bb = MobileNetV2Backbone(
            1.0, config=((1, 8, 1, 1),), stem_channels=8, last_channels=16,
            tap_indices=(0,),
        )
        bb.forward_features(RNG.normal(size=(1, 3, 8, 8)))
        with pytest.raises(ShapeError):
            bb.backward_features([np.zeros((1, 16, 4, 4))])

    def test_plain_backward_not_supported(self):
        bb = MobileNetV2Backbone(1.0, config=((1, 8, 1, 1),), stem_channels=8)
        with pytest.raises(NotImplementedError):
            bb.backward(np.zeros((1, 1280, 1, 1)))


class TestSSDDetector:
    def test_paper_family_ordering(self):
        params = {
            a: SSDDetector(full_scale_spec(a)).num_parameters()
            for a in (1.0, 0.75, 0.5)
        }
        assert params[1.0] > params[0.75] > params[0.5]
        # Within the paper's magnitude band (Table II: 4.7M / 2.7M / 1.2M).
        assert 2.0e6 < params[1.0] < 6.0e6
        assert 0.8e6 < params[0.5] < 2.0e6

    def test_forward_shapes(self):
        det = SSDDetector(tiny_spec(1.0), rng=RNG)
        conf, loc = det.forward(RNG.normal(size=(2, 3, 48, 64)))
        assert conf.shape == (2, det.num_anchors, 3)
        assert loc.shape == (2, det.num_anchors, 4)

    def test_wrong_input_shape(self):
        det = SSDDetector(tiny_spec(1.0), rng=RNG)
        with pytest.raises(ShapeError):
            det.forward(RNG.normal(size=(1, 3, 32, 32)))

    def test_anchor_feature_consistency(self):
        det = SSDDetector(tiny_spec(1.0), rng=RNG)
        expected = sum(
            fh * fw * len(det.spec.aspect_ratios) for fh, fw in det.feature_shapes
        )
        assert det.num_anchors == expected

    def test_loss_finite_and_backward(self):
        det = SSDDetector(tiny_spec(0.5), rng=RNG)
        x = RNG.normal(size=(2, 3, 48, 64)) * 0.1
        boxes = [np.array([[0.2, 0.2, 0.5, 0.7]]), np.zeros((0, 4))]
        labels = [np.array([0]), np.zeros(0, dtype=int)]
        loss, grads = det.compute_loss(x, boxes, labels)
        assert np.isfinite(loss) and loss > 0.0
        gx = det.backward(grads)
        assert gx.shape == x.shape
        assert np.isfinite(gx).all()

    def test_loss_batch_mismatch(self):
        det = SSDDetector(tiny_spec(0.5), rng=RNG)
        x = RNG.normal(size=(2, 3, 48, 64))
        with pytest.raises(ShapeError):
            det.compute_loss(x, [np.zeros((0, 4))], [np.zeros(0)])

    def test_predict_structure(self):
        det = SSDDetector(tiny_spec(0.5), rng=RNG)
        det.eval()
        results = det.predict(RNG.normal(size=(2, 3, 48, 64)) * 0.1, score_threshold=0.1)
        assert len(results) == 2
        for dets in results:
            for d in dets:
                assert 0 <= d.label < 2
                assert 0.0 <= d.score <= 1.0
                xmin, ymin, xmax, ymax = d.box
                assert 0.0 <= xmin <= xmax <= 1.0
                assert 0.0 <= ymin <= ymax <= 1.0

    def test_full_scale_has_extras(self):
        det = SSDDetector(full_scale_spec(0.5))
        assert len(det.feature_shapes) == 4
        # Extra levels halve the spatial dims each time.
        assert det.feature_shapes[2][0] < det.feature_shapes[1][0]

    def test_head_type_validation(self):
        from repro.vision.ssd import SSDSpec

        with pytest.raises(ShapeError):
            SSDSpec(input_hw=(48, 64), head_type="transformer")
