"""Tests for the mAP metric and detection-rate aggregation."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.evaluation import aggregate_detection_rate, average_precision, evaluate_map
from repro.mission.closed_loop import SearchResult
from repro.vision.ssd import Detection


def det(box, label, score):
    return Detection(box=tuple(box), label=label, score=score)


class TestAveragePrecision:
    def test_perfect_curve(self):
        r = np.array([0.5, 1.0])
        p = np.array([1.0, 1.0])
        assert average_precision(r, p) == pytest.approx(1.0, abs=0.01)

    def test_empty(self):
        assert average_precision(np.array([]), np.array([])) == 0.0

    def test_monotone_envelope(self):
        r = np.array([0.2, 0.4, 0.6])
        p = np.array([1.0, 0.2, 0.8])
        # Envelope lifts the 0.2 dip to 0.8.
        ap = average_precision(r, p)
        assert ap > average_precision(np.array([0.2, 0.6]), np.array([1.0, 0.2]))

    def test_shape_check(self):
        with pytest.raises(ShapeError):
            average_precision(np.zeros(2), np.zeros(3))


class TestEvaluateMap:
    def test_perfect_detection(self):
        gt_boxes = [np.array([[0.1, 0.1, 0.4, 0.6]])]
        gt_labels = [np.array([0])]
        preds = [[det([0.1, 0.1, 0.4, 0.6], 0, 0.99)]]
        result = evaluate_map(preds, gt_boxes, gt_labels, num_classes=2)
        assert result.per_class[0] == pytest.approx(1.0, abs=0.01)
        assert result.map_50 >= result.map_score

    def test_wrong_class_scores_zero(self):
        gt_boxes = [np.array([[0.1, 0.1, 0.4, 0.6]])]
        gt_labels = [np.array([0])]
        preds = [[det([0.1, 0.1, 0.4, 0.6], 1, 0.99)]]
        result = evaluate_map(preds, gt_boxes, gt_labels)
        assert result.per_class[0] == 0.0

    def test_localization_quality_graded(self):
        gt_boxes = [np.array([[0.1, 0.1, 0.5, 0.5]])]
        gt_labels = [np.array([0])]
        tight = [[det([0.1, 0.1, 0.5, 0.5], 0, 0.9)]]
        loose = [[det([0.15, 0.15, 0.55, 0.55], 0, 0.9)]]
        r_tight = evaluate_map(tight, gt_boxes, gt_labels)
        r_loose = evaluate_map(loose, gt_boxes, gt_labels)
        assert r_tight.map_score > r_loose.map_score

    def test_false_positives_hurt(self):
        gt_boxes = [np.array([[0.1, 0.1, 0.5, 0.5]])]
        gt_labels = [np.array([0])]
        clean = [[det([0.1, 0.1, 0.5, 0.5], 0, 0.9)]]
        noisy = [
            [
                det([0.6, 0.6, 0.9, 0.9], 0, 0.95),  # FP ranked first
                det([0.1, 0.1, 0.5, 0.5], 0, 0.9),
            ]
        ]
        assert (
            evaluate_map(noisy, gt_boxes, gt_labels).map_score
            < evaluate_map(clean, gt_boxes, gt_labels).map_score
        )

    def test_duplicate_detections_counted_once(self):
        gt_boxes = [np.array([[0.1, 0.1, 0.5, 0.5]])]
        gt_labels = [np.array([0])]
        dup = [
            [
                det([0.1, 0.1, 0.5, 0.5], 0, 0.9),
                det([0.1, 0.1, 0.5, 0.5], 0, 0.8),
            ]
        ]
        result = evaluate_map(dup, gt_boxes, gt_labels, iou_thresholds=[0.5])
        assert result.map_score < 1.0  # the duplicate is a false positive

    def test_count_mismatch(self):
        with pytest.raises(ShapeError):
            evaluate_map([[]], [np.zeros((0, 4))], [])


class TestDetectionRate:
    def test_aggregation(self):
        results = [
            SearchResult(detection_rate=1.0),
            SearchResult(detection_rate=0.5),
        ]
        mean, std = aggregate_detection_rate(results)
        assert mean == pytest.approx(0.75)
        assert std == pytest.approx(0.25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_detection_rate([])
