"""Tests for the ``python -m repro.sim`` command-line interface."""

import json
import os

import pytest

from repro.sim import scenario_names
from repro.sim.__main__ import main


class TestList:
    def test_lists_every_scenario(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_show(self, capsys):
        assert main(["show", "apartment"]) == 0
        out = capsys.readouterr().out
        assert "apartment" in out
        assert "doorways" in out

    def test_show_unknown_is_an_error(self, capsys):
        assert main(["show", "narnia"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestRun:
    def test_smoke_campaign_persists_json(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        code = main(
            [
                "run",
                "--scenario",
                "paper-room",
                "--runs",
                "2",
                "--flight-time",
                "5",
                "--seed",
                "3",
                "--out",
                out_dir,
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 missions" in out
        files = os.listdir(out_dir)
        assert len(files) == 1
        assert files[0].startswith("campaign-cli-")
        with open(os.path.join(out_dir, files[0])) as fh:
            data = json.load(fh)
        assert data["schema"].startswith("repro.sim.campaign-result/")
        assert len(data["records"]) == 2
        assert data["campaign"]["scenarios"][0]["name"] == "paper-room"

    def test_rerun_same_campaign_overwrites_same_file(self, tmp_path):
        out_dir = str(tmp_path / "results")
        argv = [
            "run",
            "--scenario",
            "paper-room",
            "--flight-time",
            "5",
            "--out",
            out_dir,
            "--quiet",
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        assert len(os.listdir(out_dir)) == 1

    def test_explore_kind(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--scenario",
                    "paper-room",
                    "--kind",
                    "explore",
                    "--flight-time",
                    "5",
                    "--quiet",
                ]
            )
            == 0
        )
        assert "mean coverage" in capsys.readouterr().out

    def test_progress_lines(self, capsys):
        assert (
            main(
                ["run", "--scenario", "paper-room", "--flight-time", "5", "--runs", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[1/2]" in out and "[2/2]" in out

    def test_unknown_scenario_is_an_error(self, capsys):
        assert main(["run", "--scenario", "narnia"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
