"""Tests for the ``python -m repro.sim`` command-line interface."""

import json
import os

import pytest

from repro.sim import family_names, scenario_names
from repro.sim.__main__ import main


class TestList:
    def test_lists_every_scenario(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in scenario_names():
            assert name in out

    def test_lists_every_family(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in family_names():
            assert name in out

    def test_show(self, capsys):
        assert main(["show", "apartment"]) == 0
        out = capsys.readouterr().out
        assert "apartment" in out
        assert "doorways" in out

    def test_show_preset_map(self, capsys):
        assert main(["show", "apartment", "--map"]) == 0
        out = capsys.readouterr().out
        assert "+---" in out and "#" in out

    def test_show_family_param_table_and_map(self, capsys):
        assert main(["show", "perfect-maze", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "scenario family" in out
        assert "cell_m" in out and "cols" in out
        assert "instance (seed 2)" in out
        assert "+---" in out  # ASCII floor plan frame

    def test_show_family_respects_params(self, capsys):
        assert (
            main(["show", "perfect-maze", "--param", "cols=5", "--param", "rows=4", "--no-map"])
            == 0
        )
        out = capsys.readouterr().out
        assert "cols=5" in out

    def test_show_family_bad_param_is_an_error(self, capsys):
        assert main(["show", "perfect-maze", "--param", "cols=banana"]) == 2
        assert "is not a number" in capsys.readouterr().err
        assert main(["show", "perfect-maze", "--param", "nope=3"]) == 2
        assert "has no param" in capsys.readouterr().err

    def test_show_unknown_is_an_error(self, capsys):
        assert main(["show", "narnia"]) == 2
        assert "unknown scenario" in capsys.readouterr().err


class TestRun:
    def test_smoke_campaign_persists_json(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        code = main(
            [
                "run",
                "--scenario",
                "paper-room",
                "--runs",
                "2",
                "--flight-time",
                "5",
                "--seed",
                "3",
                "--out",
                out_dir,
                "--quiet",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "2 missions" in out
        files = os.listdir(out_dir)
        assert len(files) == 1
        assert files[0].startswith("campaign-cli-")
        with open(os.path.join(out_dir, files[0])) as fh:
            data = json.load(fh)
        assert data["schema"].startswith("repro.sim.campaign-result/")
        assert len(data["records"]) == 2
        assert data["campaign"]["scenarios"][0]["name"] == "paper-room"

    def test_rerun_same_campaign_overwrites_same_file(self, tmp_path):
        out_dir = str(tmp_path / "results")
        argv = [
            "run",
            "--scenario",
            "paper-room",
            "--flight-time",
            "5",
            "--out",
            out_dir,
            "--quiet",
        ]
        assert main(argv) == 0
        assert main(argv) == 0
        assert len(os.listdir(out_dir)) == 1

    def test_explore_kind(self, capsys):
        assert (
            main(
                [
                    "run",
                    "--scenario",
                    "paper-room",
                    "--kind",
                    "explore",
                    "--flight-time",
                    "5",
                    "--quiet",
                ]
            )
            == 0
        )
        assert "mean coverage" in capsys.readouterr().out

    def test_progress_lines(self, capsys):
        assert (
            main(
                ["run", "--scenario", "paper-room", "--flight-time", "5", "--runs", "2"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[1/2]" in out and "[2/2]" in out

    def test_unknown_scenario_is_an_error(self, capsys):
        assert main(["run", "--scenario", "narnia"]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_family_campaign(self, tmp_path, capsys):
        out_dir = str(tmp_path / "results")
        argv = [
            "run",
            "--family",
            "perfect-maze",
            "--family-seed",
            "1",
            "2",
            "--param",
            "cols=5",
            "--param",
            "rows=4",
            "--flight-time",
            "5",
            "--quiet",
            "--out",
            out_dir,
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 missions" in out
        assert "perfect-maze-s1-" in out and "perfect-maze-s2-" in out
        files = os.listdir(out_dir)
        assert len(files) == 1
        with open(os.path.join(out_dir, files[0])) as fh:
            data = json.load(fh)
        assert data["campaign"]["generated"][0]["family"] == "perfect-maze"
        assert data["campaign"]["generated"][0]["params"]["cols"] == 5
        # identical rerun overwrites the same hash-keyed file
        assert main(argv) == 0
        assert len(os.listdir(out_dir)) == 1

    def test_family_and_preset_combine(self, capsys):
        argv = [
            "run",
            "--scenario",
            "paper-room",
            "--family",
            "scatter-field",
            "--param",
            "n_items=8",
            "--flight-time",
            "5",
            "--quiet",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "2 missions" in out
        assert "paper-room" in out and "scatter-field-s0-" in out

    def test_unknown_family_is_an_error(self, capsys):
        assert main(["run", "--family", "narnia"]) == 2
        assert "unknown scenario family" in capsys.readouterr().err

    def test_emptied_family_seed_axis_errors_instead_of_paper_room(self, capsys):
        # `--family-seed` consuming zero values must not silently fall
        # back to the default preset.
        assert main(["run", "--family", "perfect-maze", "--family-seed"]) == 2
        assert "at least one scenario" in capsys.readouterr().err
