"""Fault injection, retries, timeouts and failure isolation."""

import multiprocessing
import os

import pytest

from repro.errors import ExecError, JobTimeout, TransientJobError, WorkerCrash
from repro.exec import (
    FAILURE_SCHEMA,
    FAULT_PLAN_ENV,
    Executor,
    FaultPlan,
    FaultSpec,
    JobFailure,
    JobSpec,
    ResultCache,
    RetryPolicy,
    is_transient,
)
from repro.exec import faults
from repro.exec.executor import TRANSIENT_ERROR_TYPES


def sum_job(i=0, label=""):
    return JobSpec(
        fn="repro.exec.demo:scaled_sum",
        kwargs={"values": [1.0, float(i)], "factor": 2.0},
        version="v1",
        label=label,
    )


def sleepy_job(sleep_s, i=0):
    return JobSpec(
        fn="repro.exec.demo:sleepy_echo",
        kwargs={"value": float(i), "sleep_s": sleep_s},
        version="v1",
    )


@pytest.fixture(autouse=True)
def clean_fault_state(monkeypatch):
    monkeypatch.delenv(FAULT_PLAN_ENV, raising=False)
    yield
    faults.deactivate()


class TestRetryPolicy:
    def test_defaults_mean_one_attempt(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.timeout_s is None
        assert policy.backoff_for(1) == 0.0

    def test_backoff_doubles_deterministically(self):
        policy = RetryPolicy(max_attempts=4, backoff_s=0.5)
        assert [policy.backoff_for(k) for k in (1, 2, 3)] == [0.5, 1.0, 2.0]

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_s": -1.0},
            {"timeout_s": 0.0},
            {"timeout_s": -5.0},
        ],
    )
    def test_invalid_policy_rejected(self, kwargs):
        with pytest.raises(ExecError):
            RetryPolicy(**kwargs)

    def test_transient_classification(self):
        for exc in (
            TransientJobError("x"),
            JobTimeout("x"),
            WorkerCrash("x"),
            ConnectionError(),
            TimeoutError(),
            OSError(),
        ):
            assert is_transient(exc), exc
        assert not is_transient(ExecError("permanent"))
        assert not is_transient(ValueError("permanent"))
        assert TimeoutError.__mro__  # stdlib TimeoutError is an OSError
        assert issubclass(TimeoutError, TRANSIENT_ERROR_TYPES)


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ExecError, match="unknown fault kind"):
            FaultSpec(kind="explode")

    def test_matching_by_prefix_and_attempt(self):
        spec = FaultSpec(kind="raise", match="ab", attempt=1)
        assert spec.matches("abcd", 1)
        assert not spec.matches("abcd", 0)
        assert not spec.matches("cdab", 1)
        every = FaultSpec(kind="raise", attempt=None)
        assert every.matches("anything", 0) and every.matches("anything", 7)
        cache = FaultSpec(kind="cache-corrupt", match="ab")
        assert cache.matches("abcd")  # cache faults ignore attempts

    def test_json_roundtrip(self):
        plan = FaultPlan((
            FaultSpec(kind="raise", match="ab", attempt=2, message="zap"),
            FaultSpec(kind="crash", exit_code=9),
            FaultSpec(kind="cache-torn", match="ff"),
        ))
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_bad_json_rejected(self):
        with pytest.raises(ExecError, match="not valid JSON"):
            FaultPlan.from_json("{nope")
        with pytest.raises(ExecError, match="must be an object"):
            FaultPlan.from_json("[1, 2]")

    def test_env_activation_inline_json(self, monkeypatch):
        plan = FaultPlan((FaultSpec(kind="raise", match="ab"),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        assert faults.active_plan() == plan

    def test_env_activation_file_path(self, monkeypatch, tmp_path):
        plan = FaultPlan((FaultSpec(kind="delay", delay_s=0.01),))
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json(), encoding="utf-8")
        monkeypatch.setenv(FAULT_PLAN_ENV, str(path))
        assert faults.active_plan() == plan

    def test_env_missing_file_is_an_error(self, monkeypatch, tmp_path):
        monkeypatch.setenv(FAULT_PLAN_ENV, str(tmp_path / "nope.json"))
        with pytest.raises(ExecError, match="neither JSON nor a readable file"):
            faults.active_plan()

    def test_in_process_plan_overrides_env(self, monkeypatch):
        env_plan = FaultPlan((FaultSpec(kind="raise"),))
        monkeypatch.setenv(FAULT_PLAN_ENV, env_plan.to_json())
        local = FaultPlan(())
        with faults.injected(local):
            assert faults.active_plan() == local
        assert faults.active_plan() == env_plan

    def test_no_plan_is_a_noop(self):
        assert faults.active_plan() is None
        faults.fire_job_faults("abcd", 0)  # must not raise
        assert faults.mangle_cache_write("abcd", "blob") == "blob"


class TestRetries:
    def test_transient_fault_retried_serial(self):
        jobs = [sum_job(i) for i in range(3)]
        plan = FaultPlan((FaultSpec(kind="raise", attempt=0),))
        executor = Executor(retry=RetryPolicy(max_attempts=2))
        with faults.injected(plan):
            assert executor.run(jobs) == [2.0, 4.0, 6.0]
        report = executor.last_report
        assert report.retried == 3 and report.failed == 0
        assert "3 retries" in report.summary()

    def test_transient_fault_retried_pooled(self):
        jobs = [sum_job(i) for i in range(4)]
        plan = FaultPlan((FaultSpec(kind="raise", attempt=0),))
        executor = Executor(workers=2, retry=RetryPolicy(max_attempts=3))
        with faults.injected(plan):
            assert executor.run(jobs) == [2.0, 4.0, 6.0, 8.0]
        assert executor.last_report.retried == 4

    def test_retries_do_not_change_results(self):
        jobs = [sum_job(i) for i in range(3)]
        clean = Executor().run(jobs)
        plan = FaultPlan((FaultSpec(kind="raise", attempt=0),))
        with faults.injected(plan):
            chaotic = Executor(retry=RetryPolicy(max_attempts=2)).run(jobs)
        assert chaotic == clean

    def test_permanent_fault_not_retried(self):
        plan = FaultPlan((FaultSpec(kind="raise", permanent=True, message="dead"),))
        executor = Executor(retry=RetryPolicy(max_attempts=5), keep_going=True)
        with faults.injected(plan):
            [failure] = executor.run([sum_job()])
        assert isinstance(failure, JobFailure)
        assert failure.attempts == 1 and not failure.transient
        assert "dead" in failure.message

    def test_exhausted_transient_failure_reports_attempts(self):
        plan = FaultPlan((FaultSpec(kind="raise", attempt=None),))
        executor = Executor(retry=RetryPolicy(max_attempts=3), keep_going=True)
        with faults.injected(plan):
            [failure] = executor.run([sum_job()])
        assert failure.attempts == 3 and failure.transient
        assert executor.last_report.retried == 2
        assert executor.last_report.failed == 1

    def test_delay_fault_just_slows_the_job(self):
        plan = FaultPlan((FaultSpec(kind="delay", delay_s=0.01),))
        with faults.injected(plan):
            assert Executor().run([sum_job(1)]) == [4.0]


class TestFailureIsolation:
    def test_default_aborts_with_the_job_named(self):
        plan = FaultPlan((FaultSpec(kind="raise", permanent=True, message="zap"),))
        job = sum_job(label="the-culprit")
        with faults.injected(plan):
            with pytest.raises(ExecError, match="the-culprit") as excinfo:
                Executor().run([job])
        assert "zap" in str(excinfo.value)

    def test_keep_going_isolates_the_failure(self):
        jobs = [sum_job(i) for i in range(4)]
        target = jobs[2].content_hash()[:12]
        plan = FaultPlan((
            FaultSpec(kind="raise", match=target, attempt=None, permanent=True),
        ))
        executor = Executor(keep_going=True)
        with faults.injected(plan):
            results = executor.run(jobs)
        assert [isinstance(r, JobFailure) for r in results] == [
            False, False, True, False,
        ]
        assert results[0] == 2.0 and results[3] == 8.0
        assert executor.last_report.failed == 1
        assert "1 failed" in executor.last_report.summary()

    def test_keep_going_pooled(self):
        jobs = [sum_job(i) for i in range(4)]
        target = jobs[1].content_hash()[:12]
        plan = FaultPlan((
            FaultSpec(kind="raise", match=target, attempt=None, permanent=True),
        ))
        executor = Executor(workers=2, keep_going=True)
        with faults.injected(plan):
            results = executor.run(jobs)
        assert isinstance(results[1], JobFailure)
        assert [results[0], results[2], results[3]] == [2.0, 6.0, 8.0]

    def test_failure_fans_out_to_duplicate_jobs(self):
        jobs = [sum_job(7), sum_job(7)]  # same content hash
        plan = FaultPlan((FaultSpec(kind="raise", permanent=True),))
        executor = Executor(keep_going=True)
        with faults.injected(plan):
            first, second = executor.run(jobs)
        assert isinstance(first, JobFailure) and first is second
        assert executor.last_report.failed == 2

    def test_failed_jobs_are_not_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        plan = FaultPlan((FaultSpec(kind="raise", attempt=None),))
        with faults.injected(plan):
            Executor(cache=cache, keep_going=True).run([sum_job()])
        assert cache.stats().entries == 0
        # After the fault clears, the job executes and caches normally.
        executor = Executor(cache=cache)
        assert executor.run([sum_job()]) == [2.0]
        assert cache.stats().entries == 1

    def test_failure_envelope_roundtrip(self):
        failure = JobFailure(
            job_hash="ab" * 32,
            label="m1",
            fn="pkg.mod:fn",
            error_type="ExecError",
            message="zap",
            attempts=3,
            transient=True,
            timed_out=True,
        )
        data = failure.to_dict()
        assert data["schema"] == FAILURE_SCHEMA
        assert JobFailure.is_failure_payload(data)
        assert not JobFailure.is_failure_payload({"schema": "other"})
        assert not JobFailure.is_failure_payload(3.0)
        assert JobFailure.from_dict(data) == failure
        assert "m1" in failure.summary() and "3 attempt(s)" in failure.summary()


class TestTimeouts:
    def test_serial_timeout_is_a_transient_failure(self):
        executor = Executor(
            retry=RetryPolicy(max_attempts=1, timeout_s=0.2), keep_going=True
        )
        [failure] = executor.run([sleepy_job(5.0)])
        assert isinstance(failure, JobFailure)
        assert failure.timed_out and failure.transient
        assert failure.error_type == "JobTimeout"
        assert executor.last_report.timed_out == 1

    def test_pooled_timeout_kills_the_worker(self):
        jobs = [sleepy_job(30.0), sum_job(1)]
        executor = Executor(
            workers=2,
            retry=RetryPolicy(max_attempts=1, timeout_s=0.5),
            keep_going=True,
        )
        results = executor.run(jobs)
        assert isinstance(results[0], JobFailure) and results[0].timed_out
        assert jobs[0].content_hash()[:12] in results[0].message
        assert results[1] == 4.0  # the sibling was never poisoned
        assert executor.last_report.timed_out == 1

    def test_fast_jobs_never_hit_the_timeout(self):
        executor = Executor(retry=RetryPolicy(max_attempts=1, timeout_s=30.0))
        assert executor.run([sum_job(i) for i in range(3)]) == [2.0, 4.0, 6.0]
        assert executor.last_report.timed_out == 0


class TestWorkerCrash:
    def test_crash_fault_in_main_process_raises(self):
        # In the main process the crash fault must NOT os._exit; it
        # degrades to a transient WorkerCrash exception instead.
        plan = FaultPlan((FaultSpec(kind="crash"),))
        with faults.injected(plan):
            with pytest.raises(WorkerCrash):
                faults.fire_job_faults(sum_job().content_hash(), attempt=0)
            with pytest.raises(ExecError, match="WorkerCrash"):
                Executor().run([sum_job()])

    def test_crash_recovered_by_retry_serial(self):
        plan = FaultPlan((FaultSpec(kind="crash", attempt=0),))
        executor = Executor(retry=RetryPolicy(max_attempts=2))
        with faults.injected(plan):
            assert executor.run([sum_job(1)]) == [4.0]
        assert executor.last_report.retried == 1

    def test_dead_worker_surfaces_as_that_jobs_failure(self):
        jobs = [sum_job(i, label=f"job-{i}") for i in range(3)]
        target = jobs[0].content_hash()
        plan = FaultPlan((FaultSpec(kind="crash", match=target[:12], attempt=None),))
        executor = Executor(workers=2, keep_going=True)
        with faults.injected(plan):
            results = executor.run(jobs)
        failure = results[0]
        assert isinstance(failure, JobFailure) and failure.worker_crash
        assert failure.error_type == "WorkerCrash"
        assert "job-0" in failure.message and target[:12] in failure.message
        assert results[1:] == [4.0, 6.0]  # siblings unaffected, no hang

    def test_crashed_worker_respawned_and_job_retried(self):
        jobs = [sum_job(i) for i in range(4)]
        plan = FaultPlan((FaultSpec(kind="crash", attempt=0),))
        executor = Executor(workers=2, retry=RetryPolicy(max_attempts=3))
        with faults.injected(plan):
            assert executor.run(jobs) == [2.0, 4.0, 6.0, 8.0]
        assert executor.last_report.retried == 4
        assert executor.last_report.failed == 0


class TestCacheFaults:
    def test_corrupt_write_quarantined_then_healed(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = sum_job(3)
        plan = FaultPlan((FaultSpec(kind="cache-corrupt"),))
        with faults.injected(plan):
            clean = Executor(cache=cache).run([job])
        assert clean == [8.0]  # the fault mangles the disk blob, not the result
        # The poisoned entry quarantines on first read, then re-executes.
        healing = Executor(cache=cache)
        assert healing.run([job]) == clean
        assert cache.quarantines == 1
        assert healing.last_report.executed == 1
        stats = cache.stats()
        assert stats.quarantined == 1 and stats.entries == 1
        # Third run: a plain hit on the healed entry.
        third = Executor(cache=cache)
        assert third.run([job]) == clean
        assert third.last_report.cached == 1

    def test_torn_write_also_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = sum_job(5)
        plan = FaultPlan((FaultSpec(kind="cache-torn"),))
        with faults.injected(plan):
            Executor(cache=cache).run([job])
        _, hit = cache.get(job)
        assert not hit and cache.quarantines == 1

    def test_mangle_targets_only_matching_hashes(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        jobs = [sum_job(1), sum_job(2)]
        target = jobs[0].content_hash()[:12]
        plan = FaultPlan((FaultSpec(kind="cache-corrupt", match=target),))
        with faults.injected(plan):
            Executor(cache=cache).run(jobs)
        _, hit0 = cache.get(jobs[0])
        _, hit1 = cache.get(jobs[1])
        assert not hit0 and hit1


class TestPoolFallback:
    def test_pool_creation_failure_falls_back_to_serial(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("no processes in this sandbox")

        monkeypatch.setattr(multiprocessing, "Process", refuse)
        executor = Executor(workers=4)
        assert executor.run([sum_job(i) for i in range(3)]) == [2.0, 4.0, 6.0]
        assert executor.last_report.executed == 3

    def test_fallback_preserves_retry_semantics(self, monkeypatch):
        def refuse(*args, **kwargs):
            raise OSError("no processes in this sandbox")

        monkeypatch.setattr(multiprocessing, "Process", refuse)
        plan = FaultPlan((FaultSpec(kind="raise", attempt=0),))
        executor = Executor(workers=4, retry=RetryPolicy(max_attempts=2))
        with faults.injected(plan):
            assert executor.run([sum_job(i) for i in range(3)]) == [2.0, 4.0, 6.0]
        assert executor.last_report.retried == 3


class TestWorkersInheritEnvPlan:
    def test_env_plan_reaches_pool_workers(self, monkeypatch, tmp_path):
        # The env-var plan is read inside each worker process, so chaos
        # reaches jobs running in the pool without any in-process setup.
        jobs = [sum_job(i) for i in range(3)]
        plan = FaultPlan((FaultSpec(kind="raise", attempt=0),))
        monkeypatch.setenv(FAULT_PLAN_ENV, plan.to_json())
        executor = Executor(workers=2, retry=RetryPolicy(max_attempts=2))
        assert executor.run(jobs) == [2.0, 4.0, 6.0]
        assert executor.last_report.retried == 3
