"""Tests for repro.geometry.vec."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geometry.vec import (
    Vec2,
    angle_diff,
    heading_to_unit,
    normalize_angle,
    rotate,
)

finite = st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False)


class TestVec2:
    def test_add_sub(self):
        a, b = Vec2(1.0, 2.0), Vec2(3.0, -1.0)
        assert a + b == Vec2(4.0, 1.0)
        assert a - b == Vec2(-2.0, 3.0)

    def test_scalar_mul(self):
        assert 2.0 * Vec2(1.5, -2.0) == Vec2(3.0, -4.0)
        assert Vec2(1.5, -2.0) * 2.0 == Vec2(3.0, -4.0)

    def test_neg(self):
        assert -Vec2(1.0, -2.0) == Vec2(-1.0, 2.0)

    def test_dot_cross(self):
        assert Vec2(1.0, 0.0).dot(Vec2(0.0, 1.0)) == 0.0
        assert Vec2(1.0, 0.0).cross(Vec2(0.0, 1.0)) == 1.0
        assert Vec2(0.0, 1.0).cross(Vec2(1.0, 0.0)) == -1.0

    def test_norm(self):
        assert Vec2(3.0, 4.0).norm() == pytest.approx(5.0)
        assert Vec2(3.0, 4.0).norm_sq() == pytest.approx(25.0)

    def test_normalized(self):
        n = Vec2(3.0, 4.0).normalized()
        assert n.norm() == pytest.approx(1.0)
        with pytest.raises(ZeroDivisionError):
            Vec2(0.0, 0.0).normalized()

    def test_distance(self):
        assert Vec2(0.0, 0.0).distance_to(Vec2(3.0, 4.0)) == pytest.approx(5.0)

    def test_heading(self):
        assert Vec2(1.0, 1.0).heading() == pytest.approx(math.pi / 4)

    def test_array_roundtrip(self):
        v = Vec2(1.25, -2.5)
        assert Vec2.from_array(v.as_array()) == v


class TestAngles:
    @pytest.mark.parametrize(
        "angle,expected",
        [
            (0.0, 0.0),
            (math.pi, math.pi),
            (-math.pi, math.pi),
            (3 * math.pi, math.pi),
            (2 * math.pi, 0.0),
            (-math.pi / 2, -math.pi / 2),
        ],
    )
    def test_normalize_angle(self, angle, expected):
        assert normalize_angle(angle) == pytest.approx(expected)

    @given(st.floats(-100.0, 100.0))
    def test_normalize_angle_range(self, angle):
        wrapped = normalize_angle(angle)
        assert -math.pi < wrapped <= math.pi + 1e-12

    @given(st.floats(-10.0, 10.0), st.floats(-10.0, 10.0))
    def test_angle_diff_antisymmetric(self, a, b):
        assert angle_diff(a, b) == pytest.approx(-angle_diff(b, a), abs=1e-9) or (
            abs(abs(angle_diff(a, b)) - math.pi) < 1e-9
        )

    def test_heading_to_unit(self):
        v = heading_to_unit(math.pi / 2)
        assert v.x == pytest.approx(0.0, abs=1e-12)
        assert v.y == pytest.approx(1.0)

    @given(st.floats(-6.0, 6.0), st.floats(-6.0, 6.0))
    def test_rotate_preserves_norm(self, angle, x):
        v = Vec2(x, 1.0)
        assert rotate(v, angle).norm() == pytest.approx(v.norm(), rel=1e-9)

    def test_rotate_quarter(self):
        r = rotate(Vec2(1.0, 0.0), math.pi / 2)
        assert r.x == pytest.approx(0.0, abs=1e-12)
        assert r.y == pytest.approx(1.0)
