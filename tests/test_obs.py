"""Unit tests of the observability capture layer: trace, recorder, store."""

import io

import pytest

from repro.errors import ObsError
from repro.exec import ResultCache
from repro.obs import (
    TICK_COLUMNS,
    TRACE_SCHEMA,
    TRACE_SUFFIX,
    FlightRecorder,
    MissionTrace,
    ProgressLine,
    TraceStore,
)
from repro.exec import JobSpec


class _P:
    def __init__(self, x, y):
        self.x = x
        self.y = y


class _State:
    def __init__(self, t, x, y, heading=0.0):
        self.time = t
        self.position = _P(x, y)
        self.heading = heading


class _Estimate(_State):
    pass


class _SetPoint:
    forward = 0.4
    side = 0.0
    yaw_rate = 0.1


class _Reading:
    front = 1.0
    back = 2.0
    left = 0.5
    right = 0.6
    up = 3.0


def small_trace(n=3, kind="explore", detections=()):
    rec = FlightRecorder(kind)
    for i in range(n):
        rec.tick(
            _State(0.02 * (i + 1), 1.0 + 0.01 * i, 1.0),
            _Estimate(0.02 * (i + 1), 1.0 + 0.011 * i, 0.99),
            _SetPoint,
            _Reading,
            0,
        )
        rec.coverage_sample(0.02 * (i + 1), 0.001 * (i + 1))
    for name, cls, t, d in detections:
        rec.detection(name, cls, t, d)
    return rec.finish({"coverage": 0.5, "collisions": 0})


class TestRecorder:
    def test_tick_columns_align(self):
        trace = small_trace(5)
        assert trace.n_ticks == 5
        for column in TICK_COLUMNS:
            assert len(trace.columns[column]) == 5

    def test_phase_timer_accumulates(self):
        rec = FlightRecorder("explore")
        with rec.phase("policy"):
            pass
        with rec.phase("policy"):
            pass
        assert rec.phases["policy"] >= 0.0
        trace = rec.finish({})
        assert trace.timings["ticks"] == 0
        assert "policy" in trace.timings["phases"]

    def test_events_recorded(self):
        trace = small_trace(2, kind="search", detections=[("b1", "bottle", 0.04, 1.2)])
        assert trace.detections == [["b1", "bottle", 0.04, 1.2]]


class TestMissionTrace:
    def test_roundtrip_through_bytes(self):
        trace = small_trace()
        again = MissionTrace.from_bytes(trace.to_bytes())
        assert again.telemetry_dict() == trace.telemetry_dict()
        assert again.timings == trace.timings

    def test_fingerprint_ignores_timings(self):
        a = small_trace()
        b = small_trace()
        a.timings = {"ticks": 3, "phases": {"policy": 1.23}}
        b.timings = {"ticks": 3, "phases": {"policy": 9.87}}
        assert a.fingerprint() == b.fingerprint()

    def test_fingerprint_covers_telemetry(self):
        a = small_trace(3)
        b = small_trace(4)
        assert a.fingerprint() != b.fingerprint()

    def test_serialized_bytes_are_deterministic(self):
        a, b = small_trace(), small_trace()
        a.timings = b.timings = {}
        assert a.to_bytes() == b.to_bytes()

    def test_missing_column_rejected(self):
        columns = {c: [0.0] for c in TICK_COLUMNS if c != "heading"}
        with pytest.raises(ObsError, match="missing telemetry columns"):
            MissionTrace(kind="explore", columns=columns)

    def test_ragged_columns_rejected(self):
        columns = {c: [0.0] for c in TICK_COLUMNS}
        columns["t"] = [0.0, 1.0]
        with pytest.raises(ObsError, match="unequal lengths"):
            MissionTrace(kind="explore", columns=columns)

    def test_schema_mismatch_rejected(self):
        data = small_trace().to_dict()
        data["schema"] = "repro.obs.trace/v0"
        with pytest.raises(ObsError, match="not a"):
            MissionTrace.from_dict(data)

    def test_corrupt_bytes_rejected(self):
        with pytest.raises(ObsError, match="corrupt"):
            MissionTrace.from_bytes(b"not gzip at all")


class TestTraceStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = TraceStore(str(tmp_path))
        h = "ab" * 32
        trace = small_trace()
        path = store.put(h, trace)
        assert path.endswith(TRACE_SUFFIX)
        assert store.has(h)
        assert store.get(h).fingerprint() == trace.fingerprint()

    def test_missing_trace_is_an_error(self, tmp_path):
        store = TraceStore(str(tmp_path))
        with pytest.raises(ObsError, match="no flight trace"):
            store.get("ab" * 32)

    def test_find_resolves_prefixes(self, tmp_path):
        store = TraceStore(str(tmp_path))
        store.put("ab" * 32, small_trace())
        store.put("cd" * 32, small_trace())
        assert store.find("ab") == "ab" * 32
        assert store.find("ef") is None
        store.put("abab" + "ff" * 30, small_trace())
        with pytest.raises(ObsError, match="ambiguous"):
            store.find("ab")

    def test_stats_and_clear(self, tmp_path):
        store = TraceStore(str(tmp_path))
        store.put("ab" * 32, small_trace())
        stats = store.stats()
        assert stats.traces == 1 and stats.total_bytes > 0
        assert store.clear() == 1
        assert store.stats() == (0, 0, 0)

    def test_traces_invisible_to_result_cache(self, tmp_path):
        # Traces share the directory with the result cache; neither
        # side's inventory or clear() may touch the other's files.
        cache = ResultCache(str(tmp_path))
        job = JobSpec(fn="repro.exec.demo:scaled_sum", kwargs={"values": [1.0]})
        cache.put(job, 1.0)
        store = TraceStore(str(tmp_path))
        store.put(job.content_hash(), small_trace())
        assert cache.stats().entries == 1
        assert store.stats().traces == 1
        assert cache.clear() == 1
        assert store.stats().traces == 1
        assert store.clear() == 1


class TestProgressLine:
    def job(self):
        return JobSpec(fn="repro.exec.demo:scaled_sum", kwargs={"values": [1.0]})

    def test_rewrites_one_line_and_counts(self):
        out = io.StringIO()
        line = ProgressLine("camp", stream=out)
        line(1, 3, self.job(), None, True)
        line(2, 3, self.job(), None, False)
        line(3, 3, self.job(), None, False)
        line.finish()
        text = out.getvalue()
        assert text.count("\r") == 3
        assert text.endswith("\n")
        assert "3/3 jobs (1 cached, 2 executed)" in text
        assert line.hits == 1 and line.executed == 2

    def test_eta_appears_once_something_executed(self):
        out = io.StringIO()
        line = ProgressLine("camp", stream=out)
        line(1, 4, self.job(), None, True)
        assert "ETA" not in out.getvalue()  # cache hits give no basis
        line(2, 4, self.job(), None, False)
        assert "ETA" in out.getvalue()

    def test_finish_without_output_is_silent(self):
        out = io.StringIO()
        ProgressLine("camp", stream=out).finish()
        assert out.getvalue() == ""
