"""Tests for the mission runners and the calibrated detector model."""

import numpy as np
import pytest

from repro.drone.dynamics import DroneState
from repro.errors import MissionError
from repro.geometry.vec import Vec2
from repro.mission import (
    CalibratedDetectorModel,
    ClosedLoopMission,
    DetectorOperatingPoint,
    ExplorationMission,
)
from repro.mission.detector_model import paper_operating_points
from repro.policies import PolicyConfig, PseudoRandomPolicy
from repro.sensors.camera import HimaxCamera, ObjectObservation
from repro.world import ObjectClass, SceneObject, paper_object_layout, paper_room


@pytest.fixture
def room():
    return paper_room()


def make_observation(distance=1.0, bearing=0.0, bbox=(140, 80, 180, 200)):
    obj = SceneObject(ObjectClass.BOTTLE, Vec2(2.0, 2.0))
    return ObjectObservation(obj=obj, distance_m=distance, bearing_rad=bearing, bbox=bbox)


def state(x=1.0, y=1.0, speed=0.0, yaw_rate=0.0, time=0.0):
    return DroneState(
        position=Vec2(x, y), heading=0.0, vx_body=speed, vy_body=0.0,
        yaw_rate=yaw_rate, time=time,
    )


class TestOperatingPoints:
    def test_paper_defaults(self):
        pts = paper_operating_points()
        assert pts["1.0"].fps == 1.6
        assert pts["0.5"].fps == 4.3
        assert pts["1.0"].map_score > pts["0.75"].map_score

    def test_validation(self):
        with pytest.raises(MissionError):
            DetectorOperatingPoint("x", fps=0.0, map_score=0.5)
        with pytest.raises(MissionError):
            DetectorOperatingPoint("x", fps=1.0, map_score=1.5)


class TestCalibratedModel:
    def test_better_map_more_probable(self):
        strong = CalibratedDetectorModel(DetectorOperatingPoint("a", 1.6, 0.6))
        weak = CalibratedDetectorModel(DetectorOperatingPoint("b", 1.6, 0.3))
        obs = make_observation()
        assert strong.frame_probability(obs, state()) > weak.frame_probability(
            obs, state()
        )

    def test_small_objects_harder(self):
        model = CalibratedDetectorModel(paper_operating_points()["1.0"])
        big = make_observation(bbox=(100, 20, 220, 220))
        small = make_observation(bbox=(150, 110, 170, 130))
        assert model.size_factor(big) > model.size_factor(small)

    def test_motion_blur_hurts(self):
        model = CalibratedDetectorModel(paper_operating_points()["1.0"])
        obs = make_observation()
        assert model.blur_factor(obs, state(speed=1.5)) < model.blur_factor(
            obs, state(speed=0.0)
        )

    def test_spin_blur_hurts_more_than_translation(self):
        model = CalibratedDetectorModel(paper_operating_points()["1.0"])
        obs = make_observation(distance=2.0)
        spin = model.blur_factor(obs, state(yaw_rate=1.8))
        translate = model.blur_factor(obs, state(speed=0.5))
        assert spin < translate

    def test_trial_correlation(self):
        model = CalibratedDetectorModel(paper_operating_points()["1.0"])
        model.reset()
        obs = make_observation()
        rng = np.random.default_rng(0)
        s = state(time=0.0)
        model.detect([obs], s, rng)
        # Same pose an instant later: no new trial is granted.
        assert not model._trial_allowed(obs, state(time=0.1))
        # After moving, a trial is granted again.
        assert model._trial_allowed(obs, state(x=2.0, time=0.2))
        # And after the timeout, even in place.
        assert model._trial_allowed(obs, state(time=10.0))

    def test_reset_clears_history(self):
        model = CalibratedDetectorModel(paper_operating_points()["1.0"])
        model.detect([make_observation()], state(), np.random.default_rng(0))
        model.reset()
        assert model._trial_allowed(make_observation(), state(time=0.05))

    def test_probability_in_unit_interval(self):
        model = CalibratedDetectorModel(paper_operating_points()["1.0"])
        for speed in (0.0, 0.5, 1.0, 2.0):
            p = model.frame_probability(make_observation(), state(speed=speed))
            assert 0.0 <= p <= 1.0


class TestExplorationMission:
    def test_coverage_grows_with_time(self, room):
        short = ExplorationMission(
            room, PseudoRandomPolicy(PolicyConfig(cruise_speed=0.5)), flight_time_s=20.0
        ).run(seed=0)
        long = ExplorationMission(
            room, PseudoRandomPolicy(PolicyConfig(cruise_speed=0.5)), flight_time_s=90.0
        ).run(seed=0)
        assert long.coverage > short.coverage

    def test_reproducible(self, room):
        def fly():
            mission = ExplorationMission(
                room,
                PseudoRandomPolicy(PolicyConfig(cruise_speed=0.5)),
                flight_time_s=30.0,
            )
            return mission.run(seed=5)

        assert fly().coverage == fly().coverage

    def test_no_collisions_at_cruise(self, room):
        result = ExplorationMission(
            room, PseudoRandomPolicy(PolicyConfig(cruise_speed=0.5)), flight_time_s=60.0
        ).run(seed=1)
        assert result.collisions == 0

    def test_bad_flight_time(self, room):
        with pytest.raises(MissionError):
            ExplorationMission(room, PseudoRandomPolicy(), flight_time_s=0.0)


class TestClosedLoopMission:
    def _mission(self, room, flight_time=60.0):
        op = paper_operating_points()["1.0"]
        return ClosedLoopMission(
            room,
            paper_object_layout(),
            PseudoRandomPolicy(PolicyConfig(cruise_speed=0.5)),
            CalibratedDetectorModel(op),
            op,
            flight_time_s=flight_time,
        )

    def test_runs_and_reports(self, room):
        result = self._mission(room).run(seed=3)
        assert 0.0 <= result.detection_rate <= 1.0
        assert result.frames_processed > 60  # ~1.6 FPS * 60 s
        assert 0.0 < result.coverage <= 1.0
        # Events are unique per object and time-ordered.
        names = [e.object_name for e in result.events]
        assert len(names) == len(set(names))
        times = [e.time_s for e in result.events]
        assert times == sorted(times)

    def test_frame_pacing(self, room):
        result = self._mission(room, flight_time=30.0).run(seed=4)
        assert result.frames_processed == pytest.approx(30.0 * 1.6, abs=2)

    def test_needs_objects(self, room):
        op = paper_operating_points()["1.0"]
        with pytest.raises(MissionError):
            ClosedLoopMission(
                room, [], PseudoRandomPolicy(), CalibratedDetectorModel(op), op
            )

    def test_unique_names_required(self, room):
        op = paper_operating_points()["1.0"]
        objs = [
            SceneObject(ObjectClass.BOTTLE, Vec2(1.0, 1.0), name="same"),
            SceneObject(ObjectClass.TIN_CAN, Vec2(2.0, 2.0), name="same"),
        ]
        with pytest.raises(MissionError):
            ClosedLoopMission(
                room, objs, PseudoRandomPolicy(), CalibratedDetectorModel(op), op
            )

    def test_time_to_full_detection(self, room):
        result = self._mission(room, flight_time=120.0).run(seed=6)
        full = result.time_to_full_detection()
        if result.detection_rate == 1.0:
            assert full == max(e.time_s for e in result.events)
        else:
            assert full is None
