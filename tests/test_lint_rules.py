"""Per-rule good/bad fixture pairs for every ``repro.lint`` rule.

Each rule gets at least one source snippet that must fire and one that
must stay silent, exercised through :func:`repro.lint.lint_source` with
display paths that place the snippet on or off the hash path as the
rule requires.
"""

import pytest

from repro.lint import lint_source

#: A module on the hash path (exec/, not on the wall-clock allowlist).
HASH_PATH = "repro/exec/snippet.py"
#: A module on the hash path but allowlisted for wall-clock reads.
ALLOWLISTED = "repro/exec/queue.py"
#: A repro module off the hash path.
OFF_HASH_PATH = "repro/policies/snippet.py"


def codes(source, path=OFF_HASH_PATH, **kwargs):
    return [f.code for f in lint_source(source, path=path, **kwargs)]


# -- RPR101: unseeded / magic-literal randomness -------------------------


def test_rpr101_no_arg_default_rng_fires():
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    assert codes(src) == ["RPR101"]


def test_rpr101_magic_literal_seed_fires():
    src = "import numpy as np\nrng = np.random.default_rng(0)\n"
    assert codes(src) == ["RPR101"]


def test_rpr101_legacy_global_np_random_fires():
    src = "import numpy as np\nnp.random.seed(3)\nx = np.random.rand(4)\n"
    assert codes(src) == ["RPR101", "RPR101"]


def test_rpr101_bare_random_module_fires():
    src = "import random\nx = random.random()\n"
    assert codes(src) == ["RPR101"]


def test_rpr101_threaded_seed_passes():
    src = (
        "import numpy as np\n"
        "from repro.seeding import DEFAULT_INIT_SEED\n"
        "def f(seed):\n"
        "    return np.random.default_rng(seed)\n"
        "fallback = np.random.default_rng(DEFAULT_INIT_SEED)\n"
        "ss = np.random.SeedSequence(DEFAULT_INIT_SEED)\n"
    )
    assert codes(src) == []


def test_rpr101_silent_inside_seeding_module():
    src = "import numpy as np\nrng = np.random.default_rng()\n"
    assert codes(src, path="repro/seeding.py") == []


# -- RPR102: wall-clock on the hash path ---------------------------------


@pytest.mark.parametrize(
    "call",
    [
        "time.time()",
        "time.time_ns()",
        "datetime.datetime.now()",
        "datetime.datetime.utcnow()",
        "datetime.date.today()",
    ],
)
def test_rpr102_wall_clock_fires_on_hash_path(call):
    src = f"import time, datetime\nstamp = {call}\n"
    assert codes(src, path=HASH_PATH) == ["RPR102"]


def test_rpr102_perf_counter_is_allowed():
    """Monotonic timers are observability, excluded from hash identity."""
    src = "import time\nt0 = time.perf_counter()\nt1 = time.monotonic()\n"
    assert codes(src, path=HASH_PATH) == []


def test_rpr102_silent_off_hash_path():
    src = "import time\nstamp = time.time()\n"
    assert codes(src, path=OFF_HASH_PATH) == []


def test_rpr102_silent_on_allowlisted_module():
    src = "import time\nstamp = time.time()\n"
    assert codes(src, path=ALLOWLISTED) == []


# -- RPR103: unsorted filesystem iteration -------------------------------


@pytest.mark.parametrize(
    "expr",
    [
        "os.listdir('.')",
        "glob.glob('*.json')",
        "glob.iglob('*.json')",
        "path.iterdir()",
        "path.rglob('*.py')",
    ],
)
def test_rpr103_unsorted_iteration_fires(expr):
    src = f"import os, glob\npath = object()\nnames = {expr}\n"
    assert codes(src) == ["RPR103"]


def test_rpr103_os_walk_fires():
    src = "import os\nfor root, dirs, files in os.walk('.'):\n    pass\n"
    assert codes(src) == ["RPR103"]


@pytest.mark.parametrize(
    "expr",
    [
        "sorted(os.listdir('.'))",
        "sorted(glob.glob('*.json'))",
        "sorted(path.iterdir())",
    ],
)
def test_rpr103_sorted_wrapper_passes(expr):
    src = f"import os, glob\npath = object()\nnames = {expr}\n"
    assert codes(src) == []


# -- RPR104: unsorted serialization on the hash path ---------------------


def test_rpr104_dumps_without_sort_keys_fires():
    src = "import json\nblob = json.dumps({'b': 1, 'a': 2})\n"
    assert codes(src, path=HASH_PATH) == ["RPR104"]


def test_rpr104_dumps_with_sort_keys_passes():
    src = "import json\nblob = json.dumps({'b': 1}, sort_keys=True)\n"
    assert codes(src, path=HASH_PATH) == []


def test_rpr104_set_feeding_serialization_fires():
    src = (
        "import json\n"
        "def f(items):\n"
        "    return json.dumps(list({'a', 'b'}), sort_keys=True)\n"
    )
    assert codes(src, path=HASH_PATH) == ["RPR104"]


def test_rpr104_silent_off_hash_path():
    src = "import json\nblob = json.dumps({'b': 1, 'a': 2})\n"
    assert codes(src, path=OFF_HASH_PATH) == []


# -- RPR105: schema-token literals outside the registry ------------------


def test_rpr105_token_literal_outside_registry_fires():
    src = 'SCHEMA = "repro.exec.result/v1"\n'
    assert codes(src, path=HASH_PATH) == ["RPR105"]


def test_rpr105_registry_reference_passes():
    src = "from repro import schemas\nSCHEMA = schemas.CACHE_SCHEMA\n"
    assert codes(src, path=HASH_PATH) == []


def test_rpr105_docstring_mention_passes():
    src = '"""Docs may mention repro.exec.result/v1 tokens."""\nX = 1\n'
    assert codes(src, path=HASH_PATH) == []


def test_rpr105_duplicate_register_in_schemas_module_fires():
    src = (
        "def register(name, version):\n"
        "    return f'{name}/v{version}'\n"
        "A = register('repro.exec.thing', 1)\n"
        "B = register('repro.exec.thing', 2)\n"
    )
    findings = lint_source(src, path="repro/schemas.py")
    assert [f.code for f in findings] == ["RPR105"]


# -- RPR106: JobSpec dotted refs must statically resolve -----------------


@pytest.fixture
def repro_tree(tmp_path):
    """A minimal on-disk repro package for cross-module resolution."""
    pkg = tmp_path / "repro"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "demo.py").write_text(
        "def job(n):\n"
        "    return n\n"
        "NOT_CALLABLE = 3\n"
    )
    return tmp_path


def rpr106_codes(repro_tree, fn_ref):
    src = (
        "from repro.exec import JobSpec\n"
        f"job = JobSpec(fn={fn_ref!r}, kwargs={{}})\n"
    )
    path = str(repro_tree / "repro" / "snippet.py")
    return [f.code for f in lint_source(src, path=path)]


def test_rpr106_resolvable_ref_passes(repro_tree):
    assert rpr106_codes(repro_tree, "repro.demo:job") == []


def test_rpr106_missing_module_fires(repro_tree):
    assert rpr106_codes(repro_tree, "repro.nonexistent:job") == ["RPR106"]


def test_rpr106_missing_attribute_fires(repro_tree):
    assert rpr106_codes(repro_tree, "repro.demo:not_there") == ["RPR106"]


def test_rpr106_constant_target_fires(repro_tree):
    assert rpr106_codes(repro_tree, "repro.demo:NOT_CALLABLE") == ["RPR106"]


def test_rpr106_non_repro_ref_skipped(repro_tree):
    assert rpr106_codes(repro_tree, "otherlib.mod:fn") == []


def test_rpr106_dynamic_ref_skipped(repro_tree):
    src = (
        "from repro.exec import JobSpec\n"
        "def build(ref):\n"
        "    return JobSpec(fn=ref, kwargs={})\n"
    )
    path = str(repro_tree / "repro" / "snippet.py")
    assert [f.code for f in lint_source(src, path=path)] == []
