"""Tests for campaign expansion, hashing and the columnar result store."""

import os

import numpy as np
import pytest

from repro.errors import SimError
from repro.mission.detector_model import DetectorOperatingPoint
from repro.sim import (
    Campaign,
    CampaignResult,
    MissionRecord,
    OperatingPointSpec,
    get_scenario,
    paper_operating_point_spec,
    run_campaign,
)


def small_campaign(**overrides):
    kwargs = dict(
        name="test",
        scenarios=(get_scenario("paper-room"),),
        policies=("pseudo-random", "spiral"),
        speeds=(0.5, 1.0),
        n_runs=2,
        flight_time_s=10.0,
        seed=7,
    )
    kwargs.update(overrides)
    return Campaign(**kwargs)


class TestExpansion:
    def test_cartesian_size(self):
        campaign = small_campaign()
        specs = campaign.missions()
        assert len(specs) == 1 * 2 * 2 * 2  # scenario x policy x speed x runs
        assert campaign.size() == len(specs)

    def test_indices_and_spawn_keys_unique(self):
        specs = small_campaign().missions()
        assert [s.index for s in specs] == list(range(len(specs)))
        assert len({s.spawn_key for s in specs}) == len(specs)

    def test_spawn_matches_seed_sequence_spawn(self):
        campaign = small_campaign()
        specs = campaign.missions()
        children = np.random.SeedSequence(campaign.seed).spawn(len(specs))
        for spec, child in zip(specs, children):
            assert spec.seed_sequence().generate_state(4).tolist() == (
                child.generate_state(4).tolist()
            )

    def test_scenario_defaults_fill_empty_axes(self):
        campaign = Campaign(
            name="defaults", scenarios=(get_scenario("corridor-maze"),)
        )
        (spec,) = campaign.missions()
        scenario = get_scenario("corridor-maze")
        assert spec.policy == scenario.policy
        assert spec.speed == scenario.cruise_speed
        assert spec.ssd_width == scenario.ssd_width
        assert spec.flight_time_s == scenario.flight_time_s

    def test_explore_does_not_expand_width_axis(self):
        campaign = small_campaign(kind="explore", ssd_widths=("1.0", "0.75"))
        specs = campaign.missions()
        assert len(specs) == 1 * 2 * 2 * 2  # widths collapsed to one
        assert {s.ssd_width for s in specs} == {"1.0"}

    def test_operating_point_override(self):
        op = DetectorOperatingPoint("custom", fps=2.0, map_score=0.9)
        campaign = small_campaign(
            ssd_widths=("1.0",),
            operating_points=(OperatingPointSpec.from_operating_point("1.0", op),),
        )
        spec = campaign.missions()[0]
        assert spec.operating_point().map_score == 0.9
        # Without an override the paper's numbers apply.
        default = paper_operating_point_spec("1.0").build()
        assert default.fps == 1.6

    def test_validation(self):
        with pytest.raises(SimError):
            small_campaign(n_runs=0)
        with pytest.raises(SimError):
            small_campaign(policies=("teleport",))
        with pytest.raises(SimError):
            small_campaign(speeds=(-0.5,))
        with pytest.raises(SimError):
            small_campaign(kind="swim")
        with pytest.raises(SimError):
            small_campaign(scenarios=())
        with pytest.raises(SimError):
            small_campaign(ssd_widths=("3.0",))
        with pytest.raises(SimError):
            paper_operating_point_spec("3.0")

    def test_bad_scenario_defaults_fail_at_construction(self):
        import dataclasses

        paper = get_scenario("paper-room")
        bad_width = dataclasses.replace(paper, ssd_width="0.3")
        with pytest.raises(SimError, match="default SSD width"):
            Campaign(name="x", scenarios=(bad_width,))
        bad_policy = dataclasses.replace(paper, policy="teleport")
        with pytest.raises(SimError, match="default policy"):
            Campaign(name="x", scenarios=(bad_policy,))
        # Explicit axes override the defaults, so those campaigns are fine.
        Campaign(name="x", scenarios=(bad_width,), ssd_widths=("1.0",))
        Campaign(name="x", scenarios=(bad_policy,), policies=("spiral",))
        # Explore campaigns never touch the detector.
        Campaign(name="x", scenarios=(bad_width,), kind="explore")


class TestHash:
    def test_stable_across_instances(self):
        assert small_campaign().campaign_hash() == small_campaign().campaign_hash()

    def test_sensitive_to_definition(self):
        base = small_campaign().campaign_hash()
        assert small_campaign(seed=8).campaign_hash() != base
        assert small_campaign(n_runs=3).campaign_hash() != base
        assert (
            small_campaign(scenarios=(get_scenario("apartment"),)).campaign_hash()
            != base
        )

    def test_insensitive_to_cosmetic_description(self):
        import dataclasses

        scenario = get_scenario("paper-room")
        reworded = dataclasses.replace(scenario, description="typo fixed")
        assert (
            small_campaign(scenarios=(reworded,)).campaign_hash()
            == small_campaign().campaign_hash()
        )


@pytest.fixture(scope="module")
def tiny_result():
    campaign = Campaign(
        name="tiny",
        scenarios=(get_scenario("paper-room"),),
        policies=("pseudo-random",),
        speeds=(0.5, 1.0),
        n_runs=2,
        flight_time_s=10.0,
        seed=3,
    )
    return run_campaign(campaign)


class TestResultStore:
    def test_columns(self, tiny_result):
        cols = tiny_result.columns()
        assert len(cols["detection_rate"]) == 4
        assert cols["index"] == [0, 1, 2, 3]
        assert set(cols["speed"]) == {0.5, 1.0}
        with pytest.raises(SimError):
            tiny_result.column("nonexistent")

    def test_aggregate_matches_numpy(self, tiny_result):
        agg = tiny_result.aggregate(("policy", "speed"), value="coverage")
        assert set(agg) == {("pseudo-random", 0.5), ("pseudo-random", 1.0)}
        for (policy, speed), stat in agg.items():
            vals = [
                r.coverage
                for r in tiny_result.records
                if r.policy == policy and r.speed == speed
            ]
            assert stat.n == 2
            assert stat.mean == pytest.approx(float(np.mean(vals)))
            assert stat.std == pytest.approx(float(np.std(vals)))

    def test_filter_and_best(self, tiny_result):
        fast = tiny_result.filter(speed=1.0)
        assert len(fast) == 2
        assert all(r.speed == 1.0 for r in fast.records)
        best = tiny_result.best("coverage")
        assert best.coverage == max(tiny_result.column("coverage"))

    def test_filtered_save_does_not_clobber_parent_file(self, tiny_result, tmp_path):
        # Regression: a filtered sub-result derives its own hash, so
        # persisting it cannot overwrite the full campaign's file.
        full_path = tiny_result.save(str(tmp_path))
        sub = tiny_result.filter(speed=1.0)
        assert sub.campaign_hash != tiny_result.campaign_hash
        assert sub.campaign["filter"] == {"speed": 1.0}
        sub_path = sub.save(str(tmp_path))
        assert sub_path != full_path
        assert len(CampaignResult.load(full_path)) == 4
        assert len(CampaignResult.load(sub_path)) == 2

    def test_save_and_load_round_trip(self, tiny_result, tmp_path):
        path = tiny_result.save(str(tmp_path))
        assert tiny_result.campaign_hash[:12] in path
        loaded = CampaignResult.load(path)
        assert loaded.campaign_hash == tiny_result.campaign_hash
        assert loaded.records == tiny_result.records

    def test_save_sanitizes_campaign_name(self, tiny_result, tmp_path):
        hostile = CampaignResult(
            {**tiny_result.campaign, "name": "../night/ly"},
            tiny_result.campaign_hash,
            tiny_result.records,
        )
        path = hostile.save(str(tmp_path))
        assert os.path.dirname(path) == str(tmp_path)
        assert "/" not in os.path.basename(path).replace(str(tmp_path), "")
        assert os.path.exists(path)

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"foo": 1}')
        with pytest.raises(SimError, match="not a campaign result"):
            CampaignResult.load(str(path))

    def test_search_result_round_trip(self, tiny_result):
        record = tiny_result.records[0]
        rebuilt = record.to_search_result()
        assert rebuilt.detection_rate == record.detection_rate
        assert rebuilt.collisions == record.collisions
        assert rebuilt.distance_flown_m == record.distance_flown_m
        assert len(rebuilt.events) == len(record.events)
        assert rebuilt.series.times.tolist() == list(record.series_times)
        assert MissionRecord.from_dict(record.to_dict()) == record

    def test_search_records_measure_distance(self, tiny_result):
        # ~0.5 m/s for 10 s: the drone must have actually moved.
        for record in tiny_result.records:
            assert record.distance_flown_m > 1.0

    def test_negative_workers_rejected(self):
        # Worker validation moved into the execution layer; the runner
        # re-exports it for compatibility.
        from repro.errors import ExecError
        from repro.sim.runner import resolve_workers

        with pytest.raises(ExecError):
            resolve_workers(-1)
