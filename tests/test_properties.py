"""Property-based tests (hypothesis) on core data structures and invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.raycast import RayCaster
from repro.geometry.shapes import AABB
from repro.geometry.vec import Vec2, angle_diff, normalize_angle, rotate
from repro.mapping.occupancy import OccupancyGrid
from repro.nn.loss import softmax
from repro.quantization.fakequant import fake_quantize
from repro.quantization.observers import symmetric_scale
from repro.vision.boxcodec import BoxCodec
from repro.vision.boxes import corner_to_center, iou_matrix
from repro.vision.nms import non_max_suppression
from repro.world import Room

coord = st.floats(-50.0, 50.0, allow_nan=False)
angle = st.floats(-20.0, 20.0, allow_nan=False)


class TestGeometryProperties:
    @given(angle, angle)
    def test_angle_diff_triangle(self, a, b):
        # a == b + angle_diff(a, b), modulo 2 pi.
        reconstructed = normalize_angle(b + angle_diff(a, b))
        assert abs(angle_diff(reconstructed, a)) < 1e-9

    @given(coord, coord, angle)
    def test_rotation_composition(self, x, y, theta):
        v = Vec2(x, y)
        there_and_back = rotate(rotate(v, theta), -theta)
        assert there_and_back.distance_to(v) < 1e-6 * max(1.0, v.norm())

    @given(
        st.floats(0.5, 10.0),
        st.floats(0.5, 10.0),
        st.floats(0.05, 0.95),
        st.floats(0.05, 0.95),
        st.floats(-math.pi, math.pi),
    )
    @settings(max_examples=50)
    def test_raycast_hit_is_on_boundary(self, w, h, fx, fy, heading):
        caster = RayCaster(AABB(0.0, 0.0, w, h).boundary_segments())
        origin = Vec2(fx * w, fy * h)
        d = caster.cast_hit(origin, heading)
        assert d is not None
        hit = Vec2(
            origin.x + d * math.cos(heading), origin.y + d * math.sin(heading)
        )
        on_x = min(abs(hit.x), abs(hit.x - w)) < 1e-6
        on_y = min(abs(hit.y), abs(hit.y - h)) < 1e-6
        assert on_x or on_y


class TestOccupancyProperties:
    @given(st.lists(st.tuples(st.floats(0.0, 6.5), st.floats(0.0, 5.5)), max_size=50))
    def test_coverage_bounds_and_monotonicity(self, points):
        grid = OccupancyGrid(Room(6.5, 5.5))
        last = 0.0
        for x, y in points:
            grid.record(Vec2(x, y), 0.02)
            cov = grid.coverage()
            assert last <= cov <= 1.0
            last = cov
        assert grid.visited_count() <= min(len(points), grid.n_cells)


def small_boxes():
    def build(vals):
        x0, y0, w, h = vals
        return [x0, y0, min(1.0, x0 + w), min(1.0, y0 + h)]

    return st.tuples(
        st.floats(0.0, 0.8),
        st.floats(0.0, 0.8),
        st.floats(0.02, 0.3),
        st.floats(0.02, 0.3),
    ).map(build)


class TestVisionProperties:
    @given(st.lists(small_boxes(), min_size=1, max_size=8))
    @settings(max_examples=50)
    def test_codec_roundtrip(self, box_list):
        codec = BoxCodec()
        boxes = np.array(box_list)
        anchors = corner_to_center(
            np.tile(np.array([[0.25, 0.25, 0.75, 0.75]]), (boxes.shape[0], 1))
        )
        decoded = codec.decode(codec.encode(boxes, anchors), anchors)
        np.testing.assert_allclose(decoded, boxes, atol=1e-8)

    @given(st.lists(small_boxes(), min_size=1, max_size=10), st.integers(0, 2**31 - 1))
    @settings(max_examples=30)
    def test_nms_output_pairwise_iou_bounded(self, box_list, seed):
        boxes = np.array(box_list)
        scores = np.random.default_rng(seed).uniform(size=boxes.shape[0])
        keep = non_max_suppression(boxes, scores, iou_threshold=0.4)
        kept = boxes[keep]
        if kept.shape[0] > 1:
            m = iou_matrix(kept, kept)
            np.fill_diagonal(m, 0.0)
            assert m.max() <= 0.4 + 1e-9

    @given(st.integers(0, 2**31 - 1))
    def test_softmax_is_distribution(self, seed):
        logits = np.random.default_rng(seed).normal(size=(4, 7)) * 10.0
        p = softmax(logits)
        assert np.all(p >= 0.0)
        np.testing.assert_allclose(p.sum(axis=-1), 1.0)


class TestQuantizationProperties:
    @given(st.floats(0.01, 1000.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=50)
    def test_fake_quant_idempotent(self, max_abs, seed):
        x = np.random.default_rng(seed).uniform(-max_abs, max_abs, size=32)
        scale = symmetric_scale(max_abs)
        once = fake_quantize(x, scale)
        twice = fake_quantize(once, scale)
        np.testing.assert_allclose(once, twice)

    @given(st.floats(0.01, 100.0), st.integers(0, 2**31 - 1))
    @settings(max_examples=50)
    def test_fake_quant_bounded_error(self, max_abs, seed):
        x = np.random.default_rng(seed).uniform(-max_abs, max_abs, size=32)
        scale = symmetric_scale(max_abs)
        assert np.abs(fake_quantize(x, scale) - x).max() <= scale / 2 + 1e-12
