"""Cache hardening: quarantine, orphans, eviction, concurrency, interrupts."""

import gzip
import json
import multiprocessing
import os

import pytest

from repro.exec import Broker, Executor, JobSpec, ResultCache, TRACE_SUFFIX, Worker
from repro.exec.cache import QUARANTINE_SUFFIX, parse_age, parse_size
from repro.errors import ExecError
from repro.sim import Campaign, get_scenario, run_campaign
from repro.sim.results import CampaignResult
from repro.sim.runner import enqueue_campaign


def sum_job(i=0):
    return JobSpec(
        fn="repro.exec.demo:scaled_sum",
        kwargs={"values": [1.0, float(i)], "factor": 2.0},
        version="v1",
    )


def entry_path_of(cache, job):
    return cache.entry_path(job.content_hash())


def small_campaign(n_runs=2):
    return Campaign(
        name="hardening",
        scenarios=(get_scenario("paper-room"),),
        n_runs=n_runs,
        flight_time_s=5.0,
        seed=0,
    )


class TestParsers:
    def test_parse_size(self):
        assert parse_size("512") == 512
        assert parse_size("2k") == 2_000
        assert parse_size("1M") == 1_000_000
        assert parse_size("1G") == 1_000_000_000

    def test_parse_age(self):
        assert parse_age("90s") == 90.0
        assert parse_age("5m") == 300.0
        assert parse_age("2h") == 7200.0
        assert parse_age("1d") == 86400.0

    @pytest.mark.parametrize("bad", ["", "x", "-1k", "3w", "1.5.2h"])
    def test_bad_inputs_rejected(self, bad):
        with pytest.raises(ExecError):
            parse_age(bad)
        with pytest.raises(ExecError):
            parse_size(bad.replace("h", "k"))


class TestQuarantine:
    def test_unparseable_entry_quarantined_on_read(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = sum_job()
        cache.put(job, 4.0)
        path = entry_path_of(cache, job)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("\x00 this is not json")
        value, hit = cache.get(job)
        assert not hit and value is None
        assert not os.path.exists(path)
        assert os.path.exists(path + QUARANTINE_SUFFIX)
        assert cache.quarantines == 1
        stats = cache.stats()
        assert stats.quarantined == 1 and stats.entries == 0
        # A second lookup is a plain miss, not a second quarantine.
        _, hit = cache.get(job)
        assert not hit and cache.quarantines == 1

    def test_non_dict_entry_quarantined(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = sum_job()
        cache.put(job, 4.0)
        path = entry_path_of(cache, job)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump([1, 2, 3], fh)
        _, hit = cache.get(job)
        assert not hit and cache.quarantines == 1

    def test_schema_mismatch_is_a_miss_not_a_quarantine(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = sum_job()
        cache.put(job, 4.0)
        path = entry_path_of(cache, job)
        with open(path, encoding="utf-8") as fh:
            entry = json.load(fh)
        entry["schema"] = "repro.exec.result/v0"
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(entry, fh)
        _, hit = cache.get(job)
        assert not hit
        assert cache.quarantines == 0 and os.path.exists(path)

    def test_foreign_job_entry_is_a_miss_not_a_quarantine(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        job = sum_job()
        cache.put(job, 4.0)
        path = entry_path_of(cache, job)
        with open(path, encoding="utf-8") as fh:
            entry = json.load(fh)
        entry["job"]["kwargs"]["factor"] = 99.0  # hash collision simulation
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(entry, fh)
        _, hit = cache.get(job)
        assert not hit
        assert cache.quarantines == 0 and os.path.exists(path)

    def test_clear_removes_quarantined_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(sum_job(), 4.0)
        path = entry_path_of(cache, sum_job())
        with open(path, "w", encoding="utf-8") as fh:
            fh.write("garbage")
        cache.get(sum_job())
        assert cache.stats().quarantined == 1
        removed = cache.clear()
        assert removed == 1
        assert cache.stats() == (0, 0, (), 0, 0)


class TestOrphans:
    def test_orphans_counted_and_cleared(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(sum_job(), 4.0)
        shard = os.path.dirname(entry_path_of(cache, sum_job()))
        orphan = os.path.join(shard, ".tmp-abandoned")
        with open(orphan, "w", encoding="utf-8") as fh:
            fh.write("{partial")
        stats = cache.stats()
        assert stats.entries == 1 and stats.orphans == 1
        cache.clear()
        assert not os.path.exists(orphan)
        assert cache.stats().orphans == 0

    def test_trace_store_temps_are_not_cache_orphans(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(sum_job(), 4.0)
        shard = os.path.dirname(entry_path_of(cache, sum_job()))
        with open(os.path.join(shard, ".tmp-live.gz"), "wb") as fh:
            fh.write(b"trace-store temp")
        assert cache.stats().orphans == 0

    def test_sweep_respects_min_age(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put(sum_job(), 4.0)
        shard = os.path.dirname(entry_path_of(cache, sum_job()))
        young = os.path.join(shard, ".tmp-young")
        old = os.path.join(shard, ".tmp-old")
        for path in (young, old):
            with open(path, "w", encoding="utf-8") as fh:
                fh.write("x" * 10)
        os.utime(old, (1_000.0, 1_000.0))
        os.utime(young, (2_000.0, 2_000.0))
        removed, freed = cache.sweep_orphans(min_age_s=600.0, now=2_100.0)
        assert removed == 1 and freed == 10
        assert os.path.exists(young) and not os.path.exists(old)
        removed, _ = cache.sweep_orphans(min_age_s=0.0, now=2_100.0)
        assert removed == 1 and not os.path.exists(young)


class TestEviction:
    def _sized_cache(self, tmp_path):
        """Three entries with controlled mtimes, oldest first."""
        cache = ResultCache(str(tmp_path))
        jobs = [sum_job(i) for i in range(3)]
        for i, job in enumerate(jobs):
            cache.put(job, float(i))
            os.utime(entry_path_of(cache, job), (1_000.0 * (i + 1),) * 2)
        return cache, jobs

    def test_evict_lru_order_honors_byte_budget(self, tmp_path):
        cache, jobs = self._sized_cache(tmp_path)
        entry_bytes = os.path.getsize(entry_path_of(cache, jobs[0]))
        report = cache.evict(max_bytes=2 * entry_bytes, now=10_000.0)
        assert report.removed_entries == 1
        assert report.remaining_bytes <= 2 * entry_bytes
        # Oldest entry went; the two newest survive.
        assert cache.get(jobs[0]) == (None, False)
        assert cache.get(jobs[1])[1] and cache.get(jobs[2])[1]

    def test_evict_max_age(self, tmp_path):
        cache, jobs = self._sized_cache(tmp_path)
        # now=3500: entries aged 2500, 1500, 500 — cut at 1000s.
        report = cache.evict(max_age_s=1_000.0, now=3_500.0)
        assert report.removed_entries == 2
        assert not cache.get(jobs[0])[1] and not cache.get(jobs[1])[1]
        assert cache.get(jobs[2])[1]

    def test_evict_takes_paired_traces(self, tmp_path):
        cache, jobs = self._sized_cache(tmp_path)
        traces = []
        for job in jobs:
            trace = ResultCache.trace_path_for(entry_path_of(cache, job))
            assert trace.endswith(TRACE_SUFFIX)
            with gzip.open(trace, "wt", encoding="utf-8") as fh:
                fh.write('{"fake": "trace"}')
            traces.append(trace)
        os.utime(entry_path_of(cache, jobs[0]), (1_000.0, 1_000.0))
        report = cache.evict(max_bytes=0, now=10_000.0)
        assert report.removed_entries == 3 and report.removed_traces == 3
        assert not any(os.path.exists(t) for t in traces)
        assert cache.stats().total_bytes == 0

    def test_evict_removes_junk_first(self, tmp_path):
        cache, jobs = self._sized_cache(tmp_path)
        shard = os.path.dirname(entry_path_of(cache, jobs[0]))
        orphan = os.path.join(shard, ".tmp-junk")
        with open(orphan, "w", encoding="utf-8") as fh:
            fh.write("x" * 50)
        total = cache.stats().total_bytes
        report = cache.evict(max_bytes=total * 10, now=10_000.0)
        assert report.removed_junk == 1 and report.removed_entries == 0
        assert not os.path.exists(orphan)

    def test_cache_hit_refreshes_mtime(self, tmp_path):
        cache, jobs = self._sized_cache(tmp_path)
        path = entry_path_of(cache, jobs[0])
        stale = os.path.getmtime(path)
        cache.get(jobs[0])
        assert os.path.getmtime(path) > stale
        # The refreshed entry now survives an eviction that takes jobs[1].
        entry_bytes = os.path.getsize(path)
        report = cache.evict(max_bytes=2 * entry_bytes, now=10_000.0)
        assert report.removed_entries == 1
        assert cache.get(jobs[0])[1] and not cache.get(jobs[1])[1]

    def test_evict_requires_a_bound(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        with pytest.raises(ExecError, match="at least one"):
            cache.evict()


def _concurrent_writer(root, n_jobs, seed):
    cache = ResultCache(root)
    order = list(range(n_jobs))
    # Deterministic per-process shuffle so writers collide on the
    # same hashes in different orders.
    for k in range(len(order) - 1, 0, -1):
        j = (seed * 2654435761 + k) % (k + 1)
        order[k], order[j] = order[j], order[k]
    for i in order:
        job = sum_job(i)
        cache.put(job, 2.0 + 2.0 * i)
        value, hit = cache.get(job)
        assert hit and value == 2.0 + 2.0 * i, (i, value, hit)


class TestConcurrentWriters:
    def test_parallel_writers_leave_a_clean_cache(self, tmp_path):
        n_jobs, n_procs = 20, 4
        procs = [
            multiprocessing.Process(
                target=_concurrent_writer, args=(str(tmp_path), n_jobs, seed)
            )
            for seed in range(n_procs)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        cache = ResultCache(str(tmp_path))
        stats = cache.stats()
        assert stats.entries == n_jobs
        assert stats.orphans == 0 and stats.quarantined == 0
        for i in range(n_jobs):
            value, hit = cache.get(sum_job(i))
            assert hit and value == 2.0 + 2.0 * i


class TestInterruptedCampaign:
    def test_keyboard_interrupt_leaves_no_torn_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        campaign = small_campaign(n_runs=2)

        done = []

        def interrupt_after_first(done_n, total, job, payload, cached):
            done.append(job.label)
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                campaign, workers=0, cache=cache, exec_progress=interrupt_after_first
            )
        assert len(done) == 1
        stats = cache.stats()
        assert stats.entries == 1  # the completed mission landed
        assert stats.orphans == 0 and stats.quarantined == 0

        # The rerun reuses the survivor and is byte-identical to a
        # fresh-cache run of the same campaign.
        resumed = run_campaign(campaign, workers=0, cache=cache)
        assert resumed.execution.cached == 1
        assert resumed.execution.executed == 1
        fresh = run_campaign(
            campaign, workers=0, cache=ResultCache(str(tmp_path / "cache2"))
        )
        assert resumed.to_json() == fresh.to_json()


class Boom(Exception):
    """Deliberate failure raised from inside user progress callbacks."""


class TestRaisingProgressCallbacks:
    """A user callback that raises must abort the *call*, never the
    *state*: the execution report describes the aborted run, finished
    work stays durably cached, and queued jobs are not lost."""

    def test_report_reflects_the_aborted_run_not_the_previous_one(self, tmp_path):
        ex = Executor(cache=ResultCache(str(tmp_path / "c")))
        ex.run([sum_job(i) for i in range(3)])
        assert ex.last_report.total == 3

        calls = []

        def boom(done, total, job, value, cached):
            calls.append(done)
            raise Boom

        with pytest.raises(Boom):
            ex.run([sum_job(i) for i in range(5, 10)], progress=boom)
        assert calls == [1]
        report = ex.last_report
        assert report.total == 5  # this run, not the stale 3-job one
        assert report.executed == 1  # exactly one job finished pre-abort
        assert report.cached == 0
        assert report.failed == 0

    def test_finished_work_survives_an_aborted_run(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        jobs = [sum_job(i) for i in range(4)]

        def boom(done, total, job, value, cached):
            if done == 2:
                raise Boom

        with pytest.raises(Boom):
            Executor(cache=cache).run(jobs, progress=boom)
        # cache.put precedes the callback: both finished jobs landed
        # durably, and nothing half-written needs quarantining
        stats = cache.stats()
        assert stats.entries == 2
        assert stats.orphans == 0 and stats.quarantined == 0
        rerun = Executor(cache=cache)
        assert rerun.run(jobs) == [(1.0 + i) * 2.0 for i in range(4)]
        assert rerun.last_report.cached == 2
        assert rerun.last_report.executed == 2

    def test_pooled_run_tears_down_workers_and_rerun_completes(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        jobs = [sum_job(i) for i in range(6)]

        def boom(done, total, job, value, cached):
            raise Boom

        ex = Executor(workers=2, cache=cache)
        with pytest.raises(Boom):
            ex.run(jobs, progress=boom)
        assert ex.last_report.total == 6
        assert cache.stats().quarantined == 0
        results = Executor(workers=2, cache=cache).run(jobs)
        assert results == [(1.0 + i) * 2.0 for i in range(6)]

    def test_campaign_progress_abort_loses_no_missions(self, tmp_path):
        cache = ResultCache(str(tmp_path / "c"))
        campaign = small_campaign()

        def boom(done, total, record):
            raise Boom

        with pytest.raises(Boom):
            run_campaign(campaign, cache=cache, progress=boom)
        clean = run_campaign(campaign, cache=cache)
        assert clean.execution.cached >= 1  # pre-abort missions reused
        fresh = run_campaign(campaign)
        assert clean.to_json() == fresh.to_json()

    def test_broker_drain_progress_abort_preserves_queue_state(self, tmp_path):
        campaign = small_campaign()
        with Broker(str(tmp_path / "queue.db")) as broker:
            enqueue_campaign(campaign, broker)
            Worker(broker, worker_id="w", poll_s=0.01, exit_when_drained=True).run()
            done_before = broker.counts().done
            assert done_before == len(campaign.missions())

            def boom(done, total, record):
                raise Boom

            with pytest.raises(Boom):
                run_campaign(
                    campaign, broker=broker, progress=boom, wait_timeout_s=30.0
                )
            # the abort is collector-side only: the queue lost nothing
            # and a clean collection still matches a serial run exactly
            assert broker.counts().done == done_before
            assert broker.stats()["completions"] == done_before
            collected = run_campaign(campaign, broker=broker, wait_timeout_s=30.0)
        assert collected.to_json() == run_campaign(campaign).to_json()


class TestCampaignFailures:
    def test_failures_roundtrip_through_result_files(self, tmp_path):
        campaign = small_campaign(n_runs=1)
        result = run_campaign(campaign, workers=0)
        failure = {
            "schema": "repro.exec.failure/v1",
            "index": 7,
            "job_hash": "ab" * 32,
            "label": "mission-7",
            "fn": "repro.sim.runner:run_mission_payload",
            "error_type": "ExecError",
            "message": "zap",
            "attempts": 2,
            "transient": False,
            "timed_out": False,
            "worker_crash": False,
        }
        broken = CampaignResult(
            campaign=result.campaign,
            campaign_hash=result.campaign_hash,
            records=result.records,
            execution=result.execution,
            failures=[failure],
        )
        path = broken.save(str(tmp_path))
        loaded = CampaignResult.load(path)
        assert list(loaded.failures) == [failure]
        # Clean results do not even carry the key: old files stay valid
        # and new clean files stay byte-identical to pre-failure ones.
        assert "failures" not in result.to_dict()
        assert list(result.failures) == []
