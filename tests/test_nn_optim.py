"""Tests for optimizers and the LR schedule."""

import numpy as np
import pytest

from repro.nn.module import Parameter
from repro.nn.optim import ExponentialDecay, RMSProp, SGD


class TestExponentialDecay:
    def test_staircase(self):
        sched = ExponentialDecay(1.0, decay_rate=0.5, decay_steps=10, staircase=True)
        assert sched.lr_at(0) == 1.0
        assert sched.lr_at(9) == 1.0
        assert sched.lr_at(10) == 0.5
        assert sched.lr_at(20) == 0.25

    def test_continuous(self):
        sched = ExponentialDecay(1.0, decay_rate=0.5, decay_steps=10, staircase=False)
        assert sched.lr_at(5) == pytest.approx(0.5**0.5)

    def test_paper_schedule(self):
        # lr 8e-4, decay 0.95 every 24 epochs.
        sched = ExponentialDecay(8e-4, decay_rate=0.95, decay_steps=24)
        assert sched.lr_at(24) == pytest.approx(8e-4 * 0.95)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialDecay(-1.0)
        with pytest.raises(ValueError):
            ExponentialDecay(1.0, decay_rate=1.5)


def quadratic_descent(optimizer_cls, **kwargs):
    """Minimize ||x - 3||^2 and return the final parameter."""
    p = Parameter(np.zeros(4))
    sched = ExponentialDecay(0.1, decay_rate=1.0, decay_steps=100)
    opt = optimizer_cls([p], sched, **kwargs)
    for _ in range(300):
        opt.zero_grad()
        p.grad += 2.0 * (p.data - 3.0)
        opt.step()
    return p.data


class TestOptimizers:
    def test_sgd_converges(self):
        final = quadratic_descent(SGD, momentum=0.5)
        np.testing.assert_allclose(final, 3.0, atol=1e-3)

    def test_rmsprop_converges(self):
        final = quadratic_descent(RMSProp, momentum=0.0)
        np.testing.assert_allclose(final, 3.0, atol=1e-2)

    def test_rmsprop_with_momentum_converges(self):
        # Heavy-ball momentum oscillates on a quadratic; allow a wider band.
        final = quadratic_descent(RMSProp, momentum=0.9)
        np.testing.assert_allclose(final, 3.0, atol=0.1)

    def test_step_counts(self):
        p = Parameter(np.zeros(1))
        opt = SGD([p], ExponentialDecay(0.1), momentum=0.0)
        assert opt.step_count == 0
        opt.step()
        assert opt.step_count == 1

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], ExponentialDecay(0.1))

    def test_lr_follows_schedule(self):
        p = Parameter(np.zeros(1))
        opt = RMSProp([p], ExponentialDecay(1.0, 0.5, 1))
        assert opt.lr == 1.0
        opt.step()
        assert opt.lr == 0.5
