"""Integration tests: recording, replay, and the determinism contract.

The pinned hashes at the bottom are the regression tripwire for the
"recording is free" guarantee: a ``record=False`` campaign must keep
producing byte-identical result JSON and unchanged job hashes across
observability changes. If a pin breaks, either the mission semantics
changed (bump ``RESULT_SCHEMA``) or recording leaked into the flight --
the second one is a bug, not a schema event.
"""

import hashlib
import json

import pytest

from repro.errors import ObsError
from repro.exec import ResultCache, json_roundtrip
from repro.obs import TraceStore
from repro.obs.replay import (
    campaign_hashes,
    mission_spec_from_entry,
    replay_mission,
    replay_target_hashes,
)
from repro.sim import Campaign, get_scenario, run_campaign
from repro.sim.generators import GeneratedSpec
from repro.sim.runner import fly_mission, mission_job

#: Frozen pins: the two mission-job hashes and the result-JSON digest
#: of PIN_CAMPAIGN. Re-derived exactly once per mission-semantics
#: generation (tracked by ``schemas.MISSION_JOB_VERSION``); current
#: values belong to ``repro.sim.mission-job/v3``, the per-sensor
#: seed-stream refactor that re-drew every mission's noise tape.
PIN_JOB_HASHES = (
    "f98f104433070e82e15dc7a29f22eea6c6966d1976aaff03fd3674751449f84f",
    "16cf31415019f7a4f233721b39aa7809b8da2118d7f7bcf1e277ab5fb55c5f6d",
)
PIN_RESULT_SHA256 = (
    "9c8ba826218acce7f8ac2043c8cd72b678fc911bb884ce36924dfd8c4493ce34"
)
PIN_MAZE_JOB_HASH = (
    "8060b6e313f3088647b752de09d502d9f989886a08cbb054cafdb82f2b4ea980"
)


def pin_campaign():
    return Campaign(
        name="obs-pin",
        scenarios=(get_scenario("paper-room"),),
        n_runs=2,
        flight_time_s=10.0,
        seed=11,
    )


def explore_campaign():
    return Campaign(
        name="obs-explore",
        scenarios=(get_scenario("paper-room"),),
        flight_time_s=6.0,
        seed=4,
        kind="explore",
    )


class TestRecordingIsFree:
    def test_record_flag_never_changes_the_record(self):
        spec = next(iter(pin_campaign().missions()))
        plain, no_trace = fly_mission(spec, record=False)
        recorded, trace = fly_mission(spec, record=True)
        assert no_trace is None
        assert trace is not None and trace.n_ticks > 0
        assert recorded.to_dict() == plain.to_dict()

    def test_trace_side_channel_keeps_job_hash(self, tmp_path):
        spec = next(iter(pin_campaign().missions()))
        bare = mission_job(spec)
        traced = mission_job(spec, trace_dir=str(tmp_path))
        assert traced.content_hash() == bare.content_hash()
        assert traced.extra["trace_key"] == bare.content_hash()

    def test_recorded_campaign_result_is_byte_identical(self, tmp_path):
        campaign = pin_campaign()
        plain = run_campaign(campaign)
        cache = ResultCache(str(tmp_path))
        recorded = run_campaign(campaign, cache=cache, record=True)
        assert recorded.to_json(indent=1) == plain.to_json(indent=1)
        store = TraceStore(str(tmp_path))
        assert store.stats().traces == len(plain.records)

    def test_missing_trace_triggers_exactly_one_refly(self, tmp_path):
        campaign = pin_campaign()
        cache = ResultCache(str(tmp_path))
        first = run_campaign(campaign, cache=cache, record=True)
        assert first.execution.executed == 2
        store = TraceStore(str(tmp_path))
        victim = campaign_hashes(first)[0]
        # drop one trace by hand; the result cache entry stays
        import os

        os.remove(store.path(victim))
        again = run_campaign(campaign, cache=cache, record=True)
        assert again.execution.executed == 1
        assert again.execution.cached == 1
        assert again.to_json(indent=1) == first.to_json(indent=1)
        assert store.has(victim)


class TestReplay:
    @pytest.fixture()
    def recorded(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = run_campaign(pin_campaign(), cache=cache, record=True)
        return str(tmp_path), result

    def test_replay_without_verify_cross_checks(self, recorded):
        cache_dir, result = recorded
        for h in campaign_hashes(result):
            outcome = replay_mission(h, cache_dir)
            assert outcome.verified is None
            assert outcome.kind == "search"
            assert outcome.n_ticks > 0
            assert "consistent" in outcome.summary()

    def test_replay_verify_is_bit_identical(self, recorded):
        cache_dir, result = recorded
        h = campaign_hashes(result)[0]
        outcome = replay_mission(h, cache_dir, verify=True)
        assert outcome.verified is True
        assert "bit-identical" in outcome.summary()

    def test_spec_reconstruction_roundtrips(self, recorded):
        cache_dir, result = recorded
        h = campaign_hashes(result)[0]
        entry = ResultCache(cache_dir).load_entry(h)
        spec = mission_spec_from_entry(entry)
        assert mission_job(spec).content_hash() == h

    def test_target_resolution(self, recorded, tmp_path):
        cache_dir, result = recorded
        hashes = campaign_hashes(result)
        out = result.save(str(tmp_path / "results"))
        assert replay_target_hashes(out, cache_dir) == hashes
        assert replay_target_hashes(hashes[0][:10], cache_dir) == [hashes[0]]
        with pytest.raises(ObsError, match="no recorded trace"):
            replay_target_hashes("ffff", cache_dir)

    def test_missing_cache_entry_is_an_error(self, recorded):
        cache_dir, result = recorded
        h = campaign_hashes(result)[0]
        ResultCache(cache_dir).clear()
        with pytest.raises(ObsError, match="no matching result cache"):
            replay_mission(h, cache_dir)

    def test_tampered_result_detected(self, recorded):
        cache_dir, result = recorded
        h = campaign_hashes(result)[0]
        cache = ResultCache(cache_dir)
        path = cache.entry_path(h)
        entry = json.loads(open(path).read())
        entry["result"]["coverage"] += 0.25
        with open(path, "w") as fh:
            json.dump(entry, fh)
        with pytest.raises(ObsError, match="trace/result mismatch"):
            replay_mission(h, cache_dir)

    def test_explore_missions_replay_too(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        result = run_campaign(explore_campaign(), cache=cache, record=True)
        h = campaign_hashes(result)[0]
        outcome = replay_mission(h, str(tmp_path), verify=True)
        assert outcome.kind == "explore"
        assert outcome.verified is True


class TestPrePRPins:
    """record=False behaviour must be frozen relative to the seed."""

    def test_job_hashes_unchanged(self):
        hashes = tuple(
            mission_job(spec).content_hash()
            for spec in pin_campaign().missions()
        )
        assert hashes == PIN_JOB_HASHES

    def test_result_json_unchanged(self):
        result = run_campaign(pin_campaign())
        digest = hashlib.sha256(result.to_json(indent=1).encode()).hexdigest()
        assert digest == PIN_RESULT_SHA256

    def test_generated_scenario_hash_unchanged(self):
        campaign = Campaign(
            name="obs-pin-maze",
            generated=(
                GeneratedSpec.create(
                    "perfect-maze", {"cols": 5.0, "rows": 4.0}, seed=2
                ),
            ),
            flight_time_s=8.0,
            seed=3,
            kind="explore",
        )
        spec = next(iter(campaign.missions()))
        assert mission_job(spec).content_hash() == PIN_MAZE_JOB_HASH

    def test_campaign_definition_roundtrips(self):
        campaign = pin_campaign()
        again = Campaign.from_dict(json_roundtrip(campaign.to_dict()))
        assert again.campaign_hash() == campaign.campaign_hash()
        assert [mission_job(s).content_hash() for s in again.missions()] == [
            mission_job(s).content_hash() for s in campaign.missions()
        ]
