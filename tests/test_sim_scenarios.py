"""Tests for the declarative scenario specs and the registry."""

import pytest

from repro.errors import SimError
from repro.geometry.shapes import AABB, Circle
from repro.geometry.vec import Vec2
from repro.sim import (
    ObjectSpec,
    ObstacleSpec,
    RoomSpec,
    Scenario,
    get_scenario,
    iter_scenarios,
    register_scenario,
    scenario_names,
)
from repro.world import Obstacle, Room, paper_object_layout, paper_room


class TestSpecs:
    def test_room_spec_round_trip(self):
        room = Room(
            5.0,
            4.0,
            [
                Obstacle(AABB(1.0, 1.0, 2.0, 2.0), name="desk"),
                Obstacle(Circle(Vec2(3.0, 3.0), 0.3), name="column"),
            ],
        )
        spec = RoomSpec.from_room(room)
        rebuilt = spec.build()
        assert rebuilt.width == room.width
        assert rebuilt.length == room.length
        assert RoomSpec.from_room(rebuilt) == spec

    def test_object_spec_round_trip(self):
        for obj in paper_object_layout():
            spec = ObjectSpec.from_object(obj)
            rebuilt = spec.build()
            assert rebuilt.object_class == obj.object_class
            assert rebuilt.position.x == obj.position.x
            assert rebuilt.position.y == obj.position.y
            assert rebuilt.name == obj.name

    def test_obstacle_spec_validation(self):
        with pytest.raises(SimError):
            ObstacleSpec("pyramid", (1.0, 2.0, 3.0))
        with pytest.raises(SimError):
            ObstacleSpec("box", (1.0, 2.0, 3.0))  # needs 4 params

    def test_scenario_dict_round_trip(self):
        scenario = get_scenario("corridor-maze")
        data = scenario.to_dict()
        assert Scenario.from_dict(data) == scenario

    def test_scenario_validation(self):
        with pytest.raises(SimError):
            Scenario(name="", room=RoomSpec.from_room(paper_room()))
        with pytest.raises(SimError):
            Scenario(
                name="x", room=RoomSpec.from_room(paper_room()), cruise_speed=0.0
            )


class TestRegistry:
    def test_at_least_five_presets(self):
        assert len(scenario_names()) >= 5
        assert "paper-room" in scenario_names()

    def test_every_preset_is_flyable(self):
        for scenario in iter_scenarios():
            scenario.validate()
            room = scenario.build_room()
            objects = scenario.build_objects()
            assert objects, scenario.name
            names = [o.name for o in objects]
            assert len(set(names)) == len(names), scenario.name
            for obj in objects:
                assert room.is_free(obj.position), (scenario.name, obj.name)

    def test_paper_scenario_matches_layouts(self):
        scenario = get_scenario("paper-room")
        room = scenario.build_room()
        assert room.width == paper_room().width
        assert room.length == paper_room().length
        assert len(scenario.objects) == len(paper_object_layout())

    def test_unknown_scenario(self):
        with pytest.raises(SimError, match="unknown scenario"):
            get_scenario("atlantis")

    def test_duplicate_registration_rejected(self):
        scenario = get_scenario("paper-room")
        with pytest.raises(SimError, match="already registered"):
            register_scenario(scenario)
        # Overwriting explicitly is allowed and idempotent.
        assert register_scenario(scenario, overwrite=True) is scenario

    def test_infeasible_scatter_raises(self):
        from repro.errors import WorldError
        from repro.world import scattered_object_layout

        with pytest.raises(WorldError, match="could only place"):
            scattered_object_layout(paper_room(), n_objects=200, min_spacing=1.5)

    def test_unflyable_scenario_rejected(self):
        bad = Scenario(
            name="object-in-wall",
            room=RoomSpec(width=4.0, length=4.0),
            objects=(ObjectSpec("bottle", 9.0, 9.0, "outside"),),
        )
        with pytest.raises(SimError, match="free space"):
            register_scenario(bad)
        assert "object-in-wall" not in scenario_names()
