"""Property-based fuzzing of the exploration policies.

Whatever (possibly adversarial) sensor readings arrive, a policy must
emit finite, bounded set-points and never corrupt its state machine --
on the real drone a NaN set-point is a crash.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.drone.controller import SetPoint, VelocityController
from repro.drone.state_estimator import EstimatedState
from repro.geometry.vec import Vec2
from repro.policies import POLICY_NAMES, PolicyConfig, make_policy
from repro.sensors.multiranger import RangerReading

distance = st.floats(0.0, 4.0, allow_nan=False)
angle = st.floats(-math.pi, math.pi, allow_nan=False)
coordinate = st.floats(-10.0, 10.0, allow_nan=False)

readings = st.builds(
    RangerReading,
    front=distance,
    back=distance,
    left=distance,
    right=distance,
    up=st.just(4.0),
)

estimates = st.builds(
    EstimatedState,
    position=st.builds(Vec2, coordinate, coordinate),
    heading=angle,
    vx_body=st.floats(-1.5, 1.5),
    vy_body=st.floats(-1.5, 1.5),
    yaw_rate=st.floats(-3.0, 3.0),
    time=st.floats(0.0, 300.0),
)


@pytest.mark.parametrize("name", POLICY_NAMES)
class TestPolicyRobustness:
    @given(seq=st.lists(st.tuples(readings, estimates), min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_setpoints_always_finite_and_bounded(self, name, seq):
        policy = make_policy(name, PolicyConfig(cruise_speed=0.5))
        policy.reset(0)
        limits = VelocityController()
        for reading, estimate in seq:
            sp = policy.update(reading, estimate)
            assert isinstance(sp, SetPoint)
            for value in (sp.forward, sp.side, sp.yaw_rate):
                assert math.isfinite(value)
            clamped = limits.clamp(sp)
            # Policies should respect the envelope on their own.
            assert abs(sp.forward - clamped.forward) < 1e-9
            assert abs(sp.yaw_rate - clamped.yaw_rate) < 1e-9

    @given(reading=readings, estimate=estimates)
    @settings(max_examples=25, deadline=None)
    def test_reset_restores_determinism(self, name, reading, estimate):
        a = make_policy(name, PolicyConfig(cruise_speed=0.5))
        b = make_policy(name, PolicyConfig(cruise_speed=0.5))
        a.reset(123)
        b.reset(123)
        for _ in range(5):
            sa = a.update(reading, estimate)
            sb = b.update(reading, estimate)
            assert sa == sb
