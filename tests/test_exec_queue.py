"""Distributed work queue: broker semantics, crash recovery, exactly-once.

The fast tests drive the lease state machine directly through the
broker's ``now=`` clock overrides -- no sleeping, no racing. The
crash-recovery tests then do it for real: worker subprocesses SIGKILLed
mid-lease, a writer SIGKILLed mid-commit, and a concurrent fleet racing
over one queue, with the ``leases`` audit table proving exactly-once
execution.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.errors import ExecError
from repro.exec import (
    Broker,
    JobSpec,
    RetryPolicy,
    Worker,
)
from repro.exec.executor import _failure_from_parts
from repro.exec.faults import FAULT_KINDS
from repro.sim import Campaign, get_scenario, run_campaign
from repro.sim.runner import enqueue_campaign


def sum_job(i=0, label=""):
    return JobSpec(
        fn="repro.exec.demo:scaled_sum",
        kwargs={"values": [1.0, float(i)], "factor": 2.0},
        version="v1",
        label=label,
    )


def echo_job(token, marker_dir, sleep_s=0.0):
    return JobSpec(
        fn="repro.exec.demo:counted_echo",
        kwargs={"token": token, "marker_dir": marker_dir, "sleep_s": sleep_s},
        version="v1",
        label=token,
    )


def transient_failure(job, attempts=1):
    return _failure_from_parts(
        job, attempts=attempts, error_type="TransientJobError",
        message="flaky", transient=True,
    )


def permanent_failure(job, attempts=1):
    return _failure_from_parts(
        job, attempts=attempts, error_type="ExecError",
        message="broken", transient=False,
    )


@pytest.fixture()
def broker(tmp_path):
    with Broker(str(tmp_path / "queue.db")) as b:
        yield b


def _worker_cmd(db, *extra):
    return [
        sys.executable, "-m", "repro.exec", "worker",
        "--broker", db, "--poll", "0.05", "--no-cache", *extra,
    ]


def _wait_for(predicate, timeout_s=20.0, interval_s=0.05, what="condition"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval_s)
    raise AssertionError(f"timed out waiting for {what}")


class TestBrokerLifecycle:
    def test_submit_lease_complete_roundtrip(self, broker):
        job = sum_job(3, label="three")
        report = broker.submit([job])
        assert (report.submitted, report.duplicates, report.already_done) == (1, 0, 0)
        lease = broker.lease("w1")
        assert lease.content_hash == job.content_hash()
        assert lease.attempt == 0
        assert lease.job.content_hash() == job.content_hash()
        assert lease.job.label == "three"
        assert broker.complete("w1", lease.content_hash, lease.job.run())
        out = broker.outcome(job.content_hash())
        assert out.state == "done"
        assert out.result == 8.0
        assert broker.counts().remaining == 0

    def test_submit_is_idempotent(self, broker):
        job = sum_job(1)
        assert broker.submit([job]).submitted == 1
        assert broker.submit([job]).duplicates == 1
        lease = broker.lease("w1")
        assert broker.submit([job]).duplicates == 1
        broker.complete("w1", lease.content_hash, 4.0)
        assert broker.submit([job]).already_done == 1
        assert broker.counts().total == 1

    def test_lease_on_empty_queue_returns_none(self, broker):
        assert broker.lease("w1") is None

    def test_leases_are_fifo(self, broker):
        jobs = [sum_job(i) for i in range(3)]
        for i, job in enumerate(jobs):
            broker.submit([job], now=100.0 + i)
        got = [broker.lease(f"w{i}").content_hash for i in range(3)]
        assert got == [j.content_hash() for j in jobs]

    def test_extra_side_channel_travels_with_the_spec(self, broker):
        import dataclasses
        job = dataclasses.replace(
            sum_job(2), extra={"trace_dir": "/tmp/traces", "trace_key": "k"}
        )
        broker.submit([job])
        lease = broker.lease("w1")
        assert lease.job.extra == {"trace_dir": "/tmp/traces", "trace_key": "k"}
        assert lease.job.content_hash() == job.content_hash()

    def test_memory_path_rejected(self):
        with pytest.raises(ExecError, match="real database path"):
            Broker(":memory:")

    def test_non_broker_file_rejected(self, tmp_path):
        path = tmp_path / "garbage.db"
        path.write_bytes(b"this is not sqlite at all" * 100)
        with pytest.raises(ExecError, match="not a broker database"):
            Broker(str(path))

    def test_worker_registry(self, broker):
        broker.register_worker("w1", pid=4242, now=50.0)
        broker.submit([sum_job(1)])
        lease = broker.lease("w1", now=60.0)
        broker.complete("w1", lease.content_hash, 1.0, now=61.0)
        (row,) = broker.workers()
        assert row["worker"] == "w1"
        assert row["pid"] == 4242
        assert row["jobs_done"] == 1
        assert row["last_seen"] == 61.0


class TestLeaseStateMachine:
    def test_expired_lease_is_reclaimed_by_next_lease_call(self, broker):
        broker.submit([sum_job(1)])
        first = broker.lease("dead", lease_s=10.0, now=100.0)
        assert broker.lease("live", now=105.0) is None  # still held
        second = broker.lease("live", now=111.0)  # deadline 110 passed
        assert second is not None
        assert second.content_hash == first.content_hash
        assert second.attempt == 1  # the reclaim is visible to fault keying
        out = broker.outcome(first.content_hash)
        assert out.reclaims == 1

    def test_heartbeat_extends_the_deadline(self, broker):
        broker.submit([sum_job(1)])
        lease = broker.lease("w1", lease_s=10.0, now=100.0)
        assert broker.heartbeat("w1", lease.content_hash, lease_s=10.0, now=108.0)
        assert broker.lease("thief", now=112.0) is None  # extended to 118
        assert broker.lease("thief", now=119.0) is not None

    def test_heartbeat_refused_after_reclaim(self, broker):
        broker.submit([sum_job(1)])
        lease = broker.lease("dead", lease_s=1.0, now=100.0)
        broker.lease("live", now=102.0)
        assert not broker.heartbeat("dead", lease.content_hash, now=103.0)

    def test_late_completion_from_presumed_dead_worker_is_discarded(self, broker):
        broker.submit([sum_job(1)])
        lease = broker.lease("dead", lease_s=1.0, now=100.0)
        release = broker.lease("live", now=102.0)
        # the presumed-dead worker finishes late: refused, nothing stored
        assert not broker.complete("dead", lease.content_hash, 999.0, now=103.0)
        assert broker.outcome(lease.content_hash).state == "leased"
        assert broker.complete("live", release.content_hash, 4.0, now=104.0)
        out = broker.outcome(lease.content_hash)
        assert out.state == "done"
        assert out.result == 4.0
        # exactly one completion ever recorded
        with broker._lock:
            (completions,) = broker._conn.execute(
                "SELECT completions FROM jobs WHERE hash=?", (lease.content_hash,)
            ).fetchone()
        assert completions == 1

    def test_transient_failure_requeues_with_backoff(self, broker):
        job = sum_job(1)
        broker.submit([job], retry=RetryPolicy(max_attempts=3))
        lease = broker.lease("w1", now=100.0)
        state = broker.fail(
            "w1", lease.content_hash, transient_failure(job), retry_delay_s=5.0,
            now=101.0,
        )
        assert state == "requeued"
        assert broker.lease("w1", now=103.0) is None  # backoff window
        retry = broker.lease("w1", now=106.5)
        assert retry is not None
        assert retry.attempt == 1

    def test_permanent_failure_freezes_the_envelope(self, broker):
        job = sum_job(1)
        broker.submit([job], retry=RetryPolicy(max_attempts=3))
        lease = broker.lease("w1")
        assert broker.fail("w1", lease.content_hash, permanent_failure(job)) == "failed"
        out = broker.outcome(job.content_hash())
        assert out.state == "failed"
        failure = out.failure()
        assert failure.error_type == "ExecError"
        assert not failure.transient

    def test_attempt_budget_exhaustion(self, broker):
        job = sum_job(1)
        broker.submit([job], retry=RetryPolicy(max_attempts=2))
        lease = broker.lease("w1", now=100.0)
        assert (
            broker.fail("w1", lease.content_hash, transient_failure(job), now=101.0)
            == "requeued"
        )
        lease = broker.lease("w1", now=102.0)
        assert lease.attempt == 1
        assert (
            broker.fail(
                "w1", lease.content_hash, transient_failure(job, attempts=2),
                now=103.0,
            )
            == "failed"
        )
        out = broker.outcome(job.content_hash())
        assert out.state == "failed"
        assert out.attempts == 2

    def test_fail_after_reclaim_reports_lost(self, broker):
        job = sum_job(1)
        broker.submit([job], retry=RetryPolicy(max_attempts=3))
        broker.lease("dead", lease_s=1.0, now=100.0)
        broker.lease("live", now=102.0)
        state = broker.fail(
            "dead", job.content_hash(), transient_failure(job), now=103.0
        )
        assert state == "lost"

    def test_reclaim_budget_exhaustion_fails_the_job(self, broker):
        job = sum_job(1, label="poison")
        broker.submit([job], max_reclaims=2)
        broker.lease("w1", lease_s=1.0, now=100.0)
        assert broker.reclaim_expired(now=102.0) == 1  # reclaim 1 -> pending
        broker.lease("w2", lease_s=1.0, now=103.0)
        assert broker.reclaim_expired(now=105.0) == 1  # reclaim 2 -> budget gone
        out = broker.outcome(job.content_hash())
        assert out.state == "failed"
        assert out.reclaims == 2
        failure = out.failure()
        assert failure.error_type == "LeaseExpired"
        assert failure.worker_crash
        history = [entry["outcome"] for entry in broker.lease_history(job.content_hash())]
        assert history == ["expired", "expired"]

    def test_requeue_failed_resets_accounting(self, broker):
        job = sum_job(1)
        broker.submit([job])
        lease = broker.lease("w1", now=100.0)
        broker.fail("w1", lease.content_hash, permanent_failure(job), now=101.0)
        assert broker.requeue_failed() == 1
        lease = broker.lease("w1", now=102.0)
        assert lease is not None
        assert lease.attempt == 0
        assert broker.complete("w1", lease.content_hash, 4.0)

    def test_stats_inventory(self, broker):
        jobs = [sum_job(i) for i in range(3)]
        broker.submit(jobs, retry=RetryPolicy(max_attempts=2))
        lease = broker.lease("w1", now=100.0)
        broker.complete("w1", lease.content_hash, 1.0, now=101.0)
        lease = broker.lease("w1", now=102.0)
        broker.fail("w1", lease.content_hash, transient_failure(jobs[1]), now=103.0)
        stats = broker.stats()
        assert stats["jobs"]["total"] == 3
        assert stats["jobs"]["done"] == 1
        assert stats["jobs"]["pending"] == 2
        assert stats["completions"] == 1
        assert stats["failed_attempts"] == 1
        assert stats["leases"] == {"completed": 1, "requeued": 1}
        assert json.dumps(stats)  # artifact-grade: JSON-serializable


class TestWorkerLoop:
    def test_worker_drains_queue_in_process(self, broker, tmp_path):
        jobs = [echo_job(f"t{i}", str(tmp_path / "markers")) for i in range(5)]
        broker.submit(jobs)
        report = Worker(
            broker, worker_id="w1", poll_s=0.01, exit_when_drained=True
        ).run()
        assert report.completed == 5
        assert broker.counts().done == 5
        for job in jobs:
            assert broker.outcome(job.content_hash()).result == job.kwargs["token"]

    def test_worker_serves_cache_hits_without_executing(self, broker, tmp_path):
        from repro.exec import ResultCache

        cache = ResultCache(str(tmp_path / "cache"))
        job = echo_job("tok", str(tmp_path / "markers"))
        cache.put(job, "tok")
        broker.submit([job])
        report = Worker(
            broker, cache=cache, worker_id="w1", poll_s=0.01,
            exit_when_drained=True,
        ).run()
        assert report.completed == 1
        assert report.cache_hits == 1
        assert not (tmp_path / "markers").exists()  # never executed
        out = broker.outcome(job.content_hash())
        assert out.cached
        assert out.result == "tok"

    def test_worker_requeues_transient_and_reports_permanent(self, broker):
        flaky = JobSpec(
            fn="repro.exec.demo:always_fails",
            kwargs={"message": "nope"},
            version="v1",
            label="hopeless",
        )
        broker.submit([flaky], retry=RetryPolicy(max_attempts=3))
        report = Worker(
            broker, worker_id="w1", poll_s=0.01, exit_when_drained=True
        ).run()
        # ExecError is permanent: one attempt, no requeue
        assert report.failed == 1
        assert report.requeued == 0
        out = broker.outcome(flaky.content_hash())
        assert out.state == "failed"
        assert out.failure().error_type == "ExecError"
        assert out.attempts == 1

    def test_worker_timeout_is_transient_and_requeued(self, broker):
        slow = JobSpec(
            fn="repro.exec.demo:sleepy_echo",
            kwargs={"value": 7.0, "sleep_s": 5.0},
            version="v1",
        )
        broker.submit([slow], retry=RetryPolicy(max_attempts=1))
        report = Worker(
            broker,
            retry=RetryPolicy(max_attempts=1, timeout_s=0.1),
            worker_id="w1",
            poll_s=0.01,
            exit_when_drained=True,
        ).run()
        assert report.failed == 1
        out = broker.outcome(slow.content_hash())
        assert out.state == "failed"
        assert out.failure().timed_out
        assert out.timeouts == 1


class TestCrashRecovery:
    def test_sigkilled_worker_job_is_re_leased_and_completes(self, broker, tmp_path):
        """A worker killed -9 mid-lease loses the job, not the queue."""
        markers = str(tmp_path / "markers")
        job = echo_job("survivor", markers)
        broker.submit([job], retry=RetryPolicy(max_attempts=2))
        env = dict(os.environ)
        # attempt 0 stalls for 60 s inside the job body -- the victim is
        # guaranteed to die mid-lease; the reclaimed attempt 1 is clean.
        env["REPRO_FAULT_PLAN"] = json.dumps(
            {"faults": [{"kind": "delay", "attempt": 0, "delay_s": 60.0}]}
        )
        victim = subprocess.Popen(
            _worker_cmd(broker.path, "--lease", "1", "--worker-id", "victim"),
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            _wait_for(
                lambda: broker.counts().leased == 1, what="victim to lease the job"
            )
            victim.kill()  # SIGKILL: no heartbeats ever again
            victim.wait(timeout=10)
            rescue = Worker(
                broker, worker_id="rescuer", poll_s=0.05, exit_when_drained=True
            ).run()
        finally:
            if victim.poll() is None:
                victim.kill()
        assert rescue.completed == 1
        out = broker.outcome(job.content_hash())
        assert out.state == "done"
        assert out.result == "survivor"
        assert out.reclaims == 1
        history = broker.lease_history(job.content_hash())
        assert [h["worker"] for h in history] == ["victim", "rescuer"]
        assert [h["outcome"] for h in history] == ["expired", "completed"]
        # the reclaimed execution ran exactly once (victim died pre-body)
        assert len(os.listdir(os.path.join(markers, "survivor"))) == 1

    def test_broker_db_survives_kill9_mid_commit(self, tmp_path):
        """WAL journaling: a writer killed -9 mid-commit corrupts nothing."""
        db = str(tmp_path / "queue.db")
        Broker(db).close()  # create schema first
        writer = subprocess.Popen(
            [
                sys.executable,
                "-c",
                (
                    "from repro.exec import Broker, JobSpec\n"
                    "b = Broker(%r)\n"
                    "i = 0\n"
                    "while True:\n"
                    "    b.submit([JobSpec(fn='repro.exec.demo:scaled_sum',"
                    " kwargs={'values': [1.0, float(i + k)], 'factor': 2.0},"
                    " version='kill9') for k in range(200)])\n"
                    "    i += 200\n"
                )
                % db,
            ],
            env=dict(os.environ),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            _wait_for(
                lambda: Broker(db).counts().pending > 200,
                what="writer to commit some batches",
            )
            os.kill(writer.pid, signal.SIGKILL)
            writer.wait(timeout=10)
        finally:
            if writer.poll() is None:
                writer.kill()
        with Broker(db) as survivor:
            assert survivor.integrity_ok()
            before = survivor.counts()
            assert before.pending > 0
            assert before.leased == 0  # no half-leased wreckage
            # the queue still works end to end
            job = sum_job(10**9)
            assert survivor.submit([job]).submitted == 1
            lease = survivor.lease("after-crash")
            assert lease is not None
            assert survivor.complete("after-crash", lease.content_hash, 0.0)

    def test_worker_finishes_current_job_on_sigterm(self, broker, tmp_path):
        """Graceful shutdown: SIGTERM completes the in-flight job first."""
        markers = str(tmp_path / "markers")
        job = echo_job("graceful", markers, sleep_s=1.5)
        broker.submit([job])
        worker = subprocess.Popen(
            _worker_cmd(broker.path, "--worker-id", "polite"),
            env=dict(os.environ),
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            _wait_for(
                lambda: broker.counts().leased == 1, what="worker to lease the job"
            )
            worker.send_signal(signal.SIGTERM)
            stdout, _ = worker.communicate(timeout=30)
        finally:
            if worker.poll() is None:
                worker.kill()
        assert worker.returncode == 0, stdout
        out = broker.outcome(job.content_hash())
        assert out.state == "done"
        assert out.result == "graceful"
        assert out.reclaims == 0  # never expired: the worker finished it


class TestExactlyOnce:
    def test_concurrent_fleet_executes_every_job_exactly_once(self, tmp_path):
        db = str(tmp_path / "queue.db")
        markers = str(tmp_path / "markers")
        n_workers, n_jobs = 4, 24
        jobs = [echo_job(f"job-{i:03d}", markers) for i in range(n_jobs)]
        with Broker(db, lease_s=30.0) as submitter:
            submitter.submit(jobs)

        def drain(worker_id):
            with Broker(db) as b:
                Worker(
                    b, worker_id=worker_id, poll_s=0.01, exit_when_drained=True
                ).run()

        threads = [
            threading.Thread(target=drain, args=(f"w{i}",)) for i in range(n_workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not any(t.is_alive() for t in threads)
        with Broker(db) as b:
            counts = b.counts()
            assert counts.done == n_jobs
            assert counts.failed == 0
            for job in jobs:
                content_hash = job.content_hash()
                out = b.outcome(content_hash)
                assert out.state == "done"
                assert out.result == job.kwargs["token"]
                # lease uniqueness: exactly one lease ever completed it,
                # and no two leases were live simultaneously
                history = b.lease_history(content_hash)
                assert [h["outcome"] for h in history].count("completed") == 1
                live = [h for h in history if h["outcome"] is None]
                assert live == []
                with b._lock:
                    (completions,) = b._conn.execute(
                        "SELECT completions FROM jobs WHERE hash=?", (content_hash,)
                    ).fetchone()
                assert completions == 1
        # the side-effect ledger agrees: one execution per job, ever
        executed = sorted(os.listdir(markers))
        assert executed == [f"job-{i:03d}" for i in range(n_jobs)]
        for token in executed:
            assert len(os.listdir(os.path.join(markers, token))) == 1


def _smoke_campaign():
    return Campaign(
        name="queue-smoke",
        scenarios=(get_scenario("paper-room"),),
        n_runs=2,
        flight_time_s=5.0,
        seed=11,
    )


class TestCampaignByteIdentity:
    def test_broker_drained_campaign_matches_serial_bytes(self, tmp_path):
        """Acceptance: 3 workers, one SIGKILLed mid-lease, bytes equal."""
        campaign = _smoke_campaign()
        serial = run_campaign(campaign)
        serial_path = serial.save(str(tmp_path / "serial"))

        db = str(tmp_path / "queue.db")
        with Broker(db) as broker:
            enqueue_campaign(campaign, broker, retry=RetryPolicy(max_attempts=2))
            env = dict(os.environ)
            env["REPRO_FAULT_PLAN"] = json.dumps(
                {"faults": [{"kind": "delay", "attempt": 0, "delay_s": 60.0}]}
            )
            victim = subprocess.Popen(
                _worker_cmd(db, "--lease", "1", "--worker-id", "victim"),
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            helpers = []
            try:
                _wait_for(
                    lambda: broker.counts().leased >= 1,
                    what="victim to lease a mission",
                )
                victim.kill()  # mid-lease, mid-job-body
                victim.wait(timeout=10)
                helpers = [
                    subprocess.Popen(
                        _worker_cmd(
                            db, "--exit-when-drained", "--worker-id", f"helper{i}"
                        ),
                        env=dict(os.environ),
                        stdout=subprocess.DEVNULL,
                        stderr=subprocess.DEVNULL,
                    )
                    for i in range(2)
                ]
                brokered = run_campaign(campaign, broker=broker, wait_timeout_s=120.0)
                for h in helpers:
                    h.wait(timeout=30)
            finally:
                for proc in [victim, *helpers]:
                    if proc.poll() is None:
                        proc.kill()
            stats = broker.stats()
        brokered_path = brokered.save(str(tmp_path / "brokered"))
        assert os.path.basename(serial_path) == os.path.basename(brokered_path)
        with open(serial_path, "rb") as f:
            serial_bytes = f.read()
        with open(brokered_path, "rb") as f:
            brokered_bytes = f.read()
        assert serial_bytes == brokered_bytes
        # the kill really happened and really was recovered from
        assert stats["reclaims"] >= 1
        assert stats["completions"] == len(campaign.missions())
        assert stats["jobs"]["failed"] == 0

    def test_run_campaign_broker_times_out_without_workers(self, tmp_path):
        campaign = _smoke_campaign()
        with Broker(str(tmp_path / "queue.db")) as broker:
            with pytest.raises(ExecError, match="are any workers running"):
                run_campaign(campaign, broker=broker, wait_timeout_s=0.3, poll_s=0.05)

    def test_enqueue_campaign_is_idempotent(self, tmp_path):
        campaign = _smoke_campaign()
        with Broker(str(tmp_path / "queue.db")) as broker:
            first = enqueue_campaign(campaign, broker)
            again = enqueue_campaign(campaign, broker)
        assert first.submitted == len(campaign.missions())
        assert again.submitted == 0
        assert again.duplicates == len(campaign.missions())


@pytest.fixture(scope="module")
def serial_smoke(tmp_path_factory):
    """Fault-free baseline bytes for the smoke campaign, computed once."""
    result = run_campaign(_smoke_campaign())
    path = result.save(str(tmp_path_factory.mktemp("serial")))
    with open(path, "rb") as f:
        return os.path.basename(path), f.read()


class TestFaultMatrix:
    """Every fault kind, injected via $REPRO_FAULT_PLAN into a real
    worker subprocess draining a real campaign -- the saved result file
    must come out byte-identical to the fault-free serial baseline."""

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_campaign_bytes_survive_every_fault_kind(
        self, kind, tmp_path, serial_smoke
    ):
        campaign = _smoke_campaign()
        n_missions = len(campaign.missions())
        db = str(tmp_path / "queue.db")
        fault = {"kind": kind, "attempt": 0}
        if kind == "delay":
            fault["delay_s"] = 0.2
        env = dict(os.environ)
        env["REPRO_FAULT_PLAN"] = json.dumps({"faults": [fault]})
        # cache faults only fire on cache writes, so those runs get a
        # cache; the attempt faults run bare to keep the matrix minimal
        cache_args = (
            ("--cache", str(tmp_path / "cache"))
            if kind.startswith("cache-")
            else ("--no-cache",)
        )
        with Broker(db) as broker:
            enqueue_campaign(campaign, broker, retry=RetryPolicy(max_attempts=3))
            worker = subprocess.Popen(
                [
                    sys.executable, "-m", "repro.exec", "worker",
                    "--broker", db, "--poll", "0.05", "--exit-when-drained",
                    "--worker-id", f"chaos-{kind}", *cache_args,
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
                text=True,
            )
            try:
                brokered = run_campaign(
                    campaign, broker=broker,
                    retry=RetryPolicy(max_attempts=3), wait_timeout_s=120.0,
                )
                stdout, _ = worker.communicate(timeout=60)
            finally:
                if worker.poll() is None:
                    worker.kill()
            assert worker.returncode == 0, stdout
            stats = broker.stats()
        baseline_name, baseline_bytes = serial_smoke
        path = brokered.save(str(tmp_path / "out"))
        assert os.path.basename(path) == baseline_name
        with open(path, "rb") as f:
            assert f.read() == baseline_bytes
        assert stats["jobs"]["failed"] == 0
        assert stats["completions"] == n_missions
        if kind in ("raise", "crash"):
            # every mission's attempt 0 really was shot down and retried
            assert stats["failed_attempts"] == n_missions
            assert stats["leases"]["requeued"] == n_missions
