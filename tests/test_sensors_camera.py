"""Tests for the Himax camera model."""

import math

import pytest

from repro.errors import SensorError
from repro.geometry.shapes import AABB
from repro.geometry.vec import Vec2
from repro.sensors.camera import (
    CameraIntrinsics,
    HIMAX_INTRINSICS,
    HimaxCamera,
    ObjectObservation,
)
from repro.world import ObjectClass, Obstacle, Room, SceneObject


@pytest.fixture
def room():
    return Room(10.0, 10.0)


@pytest.fixture
def camera():
    return HimaxCamera()


def bottle_at(x, y):
    return SceneObject(ObjectClass.BOTTLE, Vec2(x, y))


class TestIntrinsics:
    def test_focal(self):
        intr = CameraIntrinsics(320, 240, math.radians(90.0))
        assert intr.focal_px == pytest.approx(160.0)

    def test_vfov_smaller_than_hfov(self):
        assert HIMAX_INTRINSICS.vfov_rad < HIMAX_INTRINSICS.hfov_rad

    def test_scaled_keeps_fov(self):
        small = HIMAX_INTRINSICS.scaled(64, 48)
        assert small.hfov_rad == HIMAX_INTRINSICS.hfov_rad
        assert small.width_px == 64

    def test_validation(self):
        with pytest.raises(SensorError):
            CameraIntrinsics(0, 240, 1.0)
        with pytest.raises(SensorError):
            CameraIntrinsics(320, 240, 4.0)


class TestVisibility:
    def test_sees_object_ahead(self, room, camera):
        obs = camera.observe_object(
            room.raycaster, Vec2(3.0, 5.0), 0.0, bottle_at(4.5, 5.0)
        )
        assert obs is not None
        assert obs.distance_m == pytest.approx(1.5)
        assert obs.bearing_rad == pytest.approx(0.0)

    def test_out_of_fov(self, room, camera):
        obs = camera.observe_object(
            room.raycaster, Vec2(3.0, 5.0), 0.0, bottle_at(3.0, 7.0)
        )
        assert obs is None  # object at +90 deg bearing

    def test_beyond_range(self, room, camera):
        obs = camera.observe_object(
            room.raycaster, Vec2(1.0, 5.0), 0.0, bottle_at(9.0, 5.0)
        )
        assert obs is None

    def test_too_close(self, room, camera):
        obs = camera.observe_object(
            room.raycaster, Vec2(3.0, 5.0), 0.0, bottle_at(3.1, 5.0)
        )
        assert obs is None

    def test_occlusion(self, camera):
        blocked = Room(
            10.0, 10.0, [Obstacle(AABB(4.0, 4.5, 4.4, 5.5), name="pillar")]
        )
        obs = camera.observe_object(
            blocked.raycaster, Vec2(3.0, 5.0), 0.0, bottle_at(5.0, 5.0)
        )
        assert obs is None

    def test_observe_many(self, room, camera):
        objects = [bottle_at(4.0, 5.0), bottle_at(4.0, 5.5), bottle_at(9.9, 9.9)]
        seen = camera.observe(room.raycaster, Vec2(3.0, 5.0), 0.0, objects)
        assert len(seen) == 2


class TestProjection:
    def test_bbox_shrinks_with_distance(self, room, camera):
        near = camera.observe_object(
            room.raycaster, Vec2(3.0, 5.0), 0.0, bottle_at(4.0, 5.0)
        )
        far = camera.observe_object(
            room.raycaster, Vec2(3.0, 5.0), 0.0, bottle_at(5.0, 5.0)
        )
        assert near.bbox_area_px > far.bbox_area_px

    def test_bbox_centered_for_zero_bearing(self, room, camera):
        obs = camera.observe_object(
            room.raycaster, Vec2(3.0, 5.0), 0.0, bottle_at(4.5, 5.0)
        )
        xmin, _, xmax, _ = obs.bbox
        cx = (xmin + xmax) / 2.0
        assert cx == pytest.approx(HIMAX_INTRINSICS.width_px / 2.0, abs=2.0)

    def test_bbox_moves_with_bearing(self, room, camera):
        # Object to the left of the axis projects left of centre... image x
        # decreases for positive bearing (left).
        obs = camera.observe_object(
            room.raycaster, Vec2(3.0, 5.0), 0.0, bottle_at(4.5, 5.6)
        )
        assert obs is not None and obs.bearing_rad > 0.0
        xmin, _, xmax, _ = obs.bbox
        assert (xmin + xmax) / 2.0 < HIMAX_INTRINSICS.width_px / 2.0

    def test_bbox_inside_image(self, room, camera):
        obs = camera.observe_object(
            room.raycaster, Vec2(3.0, 5.0), 0.0, bottle_at(3.6, 5.3)
        )
        if obs is not None:
            xmin, ymin, xmax, ymax = obs.bbox
            assert 0.0 <= xmin < xmax <= HIMAX_INTRINSICS.width_px
            assert 0.0 <= ymin < ymax <= HIMAX_INTRINSICS.height_px

    def test_bad_range_band(self):
        with pytest.raises(SensorError):
            HimaxCamera(min_range=2.0, max_range=1.0)
