"""Results-schema back-compat: v1 files load, v2 round-trips, pool == serial.

``tests/data/campaign-v1-fixture-067668d01c37.json`` was persisted by
the pre-bump (v1) code, before the ``coverage_raw`` / ``reachable_cells``
/ ``grid_cells`` columns and the reachable-cell normalization existed.
"""

import json
import os

import pytest

from repro.sim import Campaign, CampaignResult, GeneratedSpec, get_scenario, run_campaign
from repro.sim.results import RESULT_SCHEMA, SCALAR_COLUMNS, MissionRecord

FIXTURE = os.path.join(
    os.path.dirname(__file__), "data", "campaign-v1-fixture-067668d01c37.json"
)


def fixture_campaign() -> Campaign:
    """The exact campaign definition the v1 fixture was produced from."""
    return Campaign(
        name="v1-fixture",
        scenarios=(get_scenario("paper-room"),),
        policies=("pseudo-random",),
        n_runs=2,
        flight_time_s=6.0,
        seed=21,
    )


class TestV1FixtureLoads:
    def test_fixture_really_is_v1(self):
        with open(FIXTURE, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
        assert raw["schema"] == "repro.sim.campaign-result/v1"
        assert all("coverage_raw" not in r for r in raw["records"])

    def test_load_backfills_new_columns(self):
        result = CampaignResult.load(FIXTURE)
        assert len(result) == 2
        for record in result.records:
            # v1 coverage *was* the raw fraction.
            assert record.coverage_raw == record.coverage
            assert record.reachable_cells == 0
            assert record.grid_cells == 0
        # The new columns are live columns, not just fields.
        cols = result.columns()
        assert cols["coverage_raw"] == cols["coverage"]
        assert set(SCALAR_COLUMNS) == set(cols)

    def test_rerun_matches_fixture_on_fully_reachable_world(self):
        # The paper room is fully reachable, so the corrected metric
        # must reproduce the v1 coverage numbers bit-for-bit.
        old = CampaignResult.load(FIXTURE)
        new = run_campaign(fixture_campaign())
        assert new.campaign_hash == old.campaign_hash
        assert [r.coverage for r in new.records] == [r.coverage for r in old.records]
        for record in new.records:
            assert record.coverage_raw == record.coverage
            assert record.reachable_cells == record.grid_cells == 143


class TestV2RoundTrip:
    def test_schema_bumped_and_round_trips(self, tmp_path):
        result = run_campaign(fixture_campaign())
        path = result.save(str(tmp_path))
        with open(path, "r", encoding="utf-8") as fh:
            raw = json.load(fh)
        assert raw["schema"] == RESULT_SCHEMA == "repro.sim.campaign-result/v2"
        loaded = CampaignResult.load(path)
        assert loaded.records == result.records
        assert loaded.to_json() == result.to_json()

    def test_record_round_trip_preserves_new_fields(self):
        record = run_campaign(fixture_campaign()).records[0]
        assert record.reachable_cells == 143
        clone = MissionRecord.from_dict(record.to_dict())
        assert clone == record


class TestSerialEqualsPooled:
    def test_records_identical_including_new_columns(self):
        campaign = Campaign(
            name="compat-pool",
            generated=(
                GeneratedSpec.create(
                    "perfect-maze",
                    {"cols": 6, "rows": 5, "cell_m": 1.1},
                    seed=1,
                ),
            ),
            n_runs=2,
            flight_time_s=8.0,
            kind="explore",
            seed=5,
        )
        serial = run_campaign(campaign, workers=None)
        pooled = run_campaign(campaign, workers=2)
        assert serial.records == pooled.records
        assert serial.to_json() == pooled.to_json()
        for field in ("coverage", "coverage_raw", "reachable_cells", "grid_cells"):
            assert [getattr(r, field) for r in serial.records] == [
                getattr(r, field) for r in pooled.records
            ]
        # The generated maze has unreachable grid cells, so the
        # normalization is live on this world (143 of 154 reachable).
        for record in serial.records:
            assert record.reachable_cells == 143
            assert record.grid_cells == 154
            assert record.coverage > record.coverage_raw
            assert record.coverage <= 1.0