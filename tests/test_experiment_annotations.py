"""Regression: experiment signatures carry honest Optional annotations.

The ``run()`` entry points defaulted ``scale`` to ``None`` while
annotating it as a bare ``ExperimentScale``; under ``from __future__
import annotations`` the lie only surfaces when the hints are actually
resolved. Resolve them all here and require every ``None``-defaulted
parameter to be ``Optional``.
"""

import inspect
import typing

import pytest

from repro.experiments import fig3, fig5, fig6, table1, table2, table3, table4
from repro.experiments.config import ExperimentScale

MODULES = (table1, table2, table3, table4, fig3, fig5, fig6)

FUNCTIONS = [mod.run for mod in MODULES] + [table3.build_campaign]


def _id(fn):
    return f"{fn.__module__.rsplit('.', 1)[-1]}.{fn.__name__}"


@pytest.mark.parametrize("fn", FUNCTIONS, ids=_id)
def test_hints_resolve_without_type_errors(fn):
    hints = typing.get_type_hints(fn)
    assert "scale" in hints


@pytest.mark.parametrize("fn", FUNCTIONS, ids=_id)
def test_scale_is_optional_experiment_scale(fn):
    hints = typing.get_type_hints(fn)
    assert hints["scale"] == typing.Optional[ExperimentScale]


@pytest.mark.parametrize("fn", FUNCTIONS, ids=_id)
def test_every_none_default_is_annotated_optional(fn):
    hints = typing.get_type_hints(fn)
    for name, param in inspect.signature(fn).parameters.items():
        if param.default is None:
            args = typing.get_args(hints[name])
            assert type(None) in args, (
                f"{_id(fn)} parameter {name!r} defaults to None but is "
                f"annotated {hints[name]!r}"
            )
