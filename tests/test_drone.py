"""Tests for repro.drone: dynamics, controller, estimator, platform."""

import math

import numpy as np
import pytest

from repro.drone import (
    Crazyflie,
    CrazyflieConfig,
    DroneDynamics,
    DroneState,
    SetPoint,
    StateEstimator,
    VelocityController,
)
from repro.errors import WorldError
from repro.geometry.vec import Vec2
from repro.sensors.flowdeck import OdometrySample
from repro.world import Room


@pytest.fixture
def room():
    return Room(6.5, 5.5)


class TestSetPoint:
    def test_hover(self):
        sp = SetPoint.hover()
        assert sp.forward == sp.side == sp.yaw_rate == 0.0

    def test_clamp(self):
        ctrl = VelocityController(max_speed=1.0, max_yaw_rate=2.0)
        sp = ctrl.clamp(SetPoint(forward=5.0, side=-3.0, yaw_rate=-9.0))
        assert sp.forward == 1.0
        assert sp.side == -1.0
        assert sp.yaw_rate == -2.0


class TestDynamics:
    def test_bad_start(self, room):
        with pytest.raises(WorldError):
            DroneDynamics(room, DroneState(Vec2(-1.0, 1.0), 0.0))

    def test_velocity_converges(self, room):
        dyn = DroneDynamics(room, DroneState(Vec2(1.0, 1.0), 0.0))
        for _ in range(100):
            dyn.step(SetPoint(forward=0.5), dt=0.02)
        assert dyn.state.vx_body == pytest.approx(0.5, rel=0.02)

    def test_straight_flight(self, room):
        dyn = DroneDynamics(room, DroneState(Vec2(1.0, 1.0), 0.0))
        for _ in range(200):
            dyn.step(SetPoint(forward=0.5), dt=0.02)
        # About 0.5 m/s * 4 s minus the spin-up transient.
        assert 1.5 < dyn.state.position.x - 1.0 < 2.0
        assert dyn.state.position.y == pytest.approx(1.0, abs=1e-6)

    def test_yaw_integrates(self, room):
        dyn = DroneDynamics(room, DroneState(Vec2(3.0, 2.5), 0.0))
        for _ in range(100):
            dyn.step(SetPoint(yaw_rate=1.0), dt=0.02)
        assert dyn.state.heading == pytest.approx(2.0, abs=0.15)

    def test_wall_blocks_and_counts(self, room):
        dyn = DroneDynamics(room, DroneState(Vec2(6.2, 2.5), 0.0))
        for _ in range(100):
            dyn.step(SetPoint(forward=1.0), dt=0.02)
        assert dyn.state.position.x <= 6.5 - dyn.radius + 1e-9
        assert dyn.collision_count > 0

    def test_slide_along_wall(self, room):
        # Heading 45 deg into the far x wall: x blocked, y free -> slide up.
        dyn = DroneDynamics(
            room, DroneState(Vec2(6.4, 2.5), math.pi / 4)
        )
        y0 = dyn.state.position.y
        for _ in range(100):
            dyn.step(SetPoint(forward=0.5), dt=0.02)
        assert dyn.state.position.y > y0 + 0.3

    def test_time_advances(self, room):
        dyn = DroneDynamics(room, DroneState(Vec2(1.0, 1.0), 0.0))
        dyn.step(SetPoint.hover(), dt=0.02)
        assert dyn.state.time == pytest.approx(0.02)


class TestStateEstimator:
    def test_integrates_forward(self):
        est = StateEstimator(Vec2(0.0, 0.0), 0.0)
        for _ in range(50):
            est.update(OdometrySample(1.0, 0.0, 0.5), 0.0, 0.02)
        assert est.estimate.position.x == pytest.approx(1.0)
        assert est.estimate.position.y == pytest.approx(0.0)

    def test_heading_from_gyro(self):
        est = StateEstimator()
        for _ in range(50):
            est.update(OdometrySample(0.0, 0.0, 0.5), 0.5, 0.02)
        assert est.estimate.heading == pytest.approx(0.5)

    def test_body_frame_rotation(self):
        est = StateEstimator(Vec2(0.0, 0.0), math.pi / 2)
        for _ in range(50):
            est.update(OdometrySample(1.0, 0.0, 0.5), 0.0, 0.02)
        assert est.estimate.position.x == pytest.approx(0.0, abs=1e-9)
        assert est.estimate.position.y == pytest.approx(1.0)


class TestCrazyflie:
    def test_noise_free_estimator_tracks_truth(self, room):
        cf = Crazyflie(room, config=CrazyflieConfig(noisy=False))
        for _ in range(200):
            cf.step(SetPoint(forward=0.5, yaw_rate=0.3))
        truth = cf.state.position
        est = cf.estimated_state.position
        assert truth.distance_to(est) < 0.05

    def test_noisy_estimator_drifts_boundedly(self, room):
        cf = Crazyflie(room, seed=0)
        for _ in range(500):
            cf.step(SetPoint(forward=0.5, yaw_rate=0.2))
        drift = cf.state.position.distance_to(cf.estimated_state.position)
        assert drift < 1.0  # bounded for a 10 s flight

    def test_ranger_refresh_rate(self, room):
        cf = Crazyflie(room, config=CrazyflieConfig(noisy=False))
        r1 = cf.read_ranger()
        cf.step(SetPoint(forward=1.0))  # 20 ms < 50 ms ToF period
        r2 = cf.read_ranger()
        assert r2 is r1  # stale reading returned between refreshes
        cf.step(SetPoint(forward=1.0))
        cf.step(SetPoint(forward=1.0))
        r3 = cf.read_ranger()
        assert r3 is not r1

    def test_reproducible_with_seed(self, room):
        def fly(seed):
            cf = Crazyflie(room, seed=seed)
            for _ in range(100):
                cf.step(SetPoint(forward=0.5, yaw_rate=0.5))
            return cf.estimated_state.position

        a, b = fly(7), fly(7)
        assert a.x == b.x and a.y == b.y
        # Different sensor-noise seed -> different *estimated* trajectory
        # (the ground truth is open-loop deterministic under fixed set-points).
        c = fly(8)
        assert (a.x, a.y) != (c.x, c.y)
