"""Tests for the hardware models (cost, GAP8, memory, deploy, power, STM32)."""

import numpy as np
import pytest

from repro.errors import DeploymentError, ReproError
from repro.hw import (
    AIDeckPowerModel,
    GAP8Config,
    GAP8PerformanceModel,
    GAPFlowDeployer,
    STM32LoadModel,
    analyze_memory,
    platform_power_breakdown,
    trace_detector,
)
from repro.hw.cost import CostReport, LayerCost
from repro.hw.power import hover_motor_power_w
from repro.policies import POLICY_NAMES
from repro.vision import SSDDetector, full_scale_spec, tiny_spec


@pytest.fixture(scope="module")
def plan_1_0():
    return GAPFlowDeployer().plan(SSDDetector(full_scale_spec(1.0)))


class TestCostTrace:
    def test_macs_match_forward(self):
        # The analytic trace must agree with an actual forward pass's shapes.
        det = SSDDetector(tiny_spec(1.0))
        report = trace_detector(det)
        assert report.total_params == det.num_parameters()
        conf, _ = det.forward(np.zeros((1, 3, 48, 64)))
        assert conf.shape[1] == det.num_anchors

    def test_full_scale_macs_in_paper_band(self, plan_1_0):
        # Paper Table II: 534 / 358 / 193 MMAC.
        assert 400e6 < plan_1_0.cost.total_macs < 700e6
        half = GAPFlowDeployer().plan(SSDDetector(full_scale_spec(0.5)))
        assert 130e6 < half.cost.total_macs < 260e6

    def test_kinds_partition(self, plan_1_0):
        by_kind = plan_1_0.cost.macs_by_kind()
        assert sum(by_kind.values()) == plan_1_0.cost.total_macs
        assert by_kind["pointwise"] > by_kind["depthwise"]


class TestGAP8Model:
    def test_efficiency_band(self, plan_1_0):
        # Paper: 5.3-5.9 MAC/cycle overall.
        eff = plan_1_0.performance.efficiency_mac_per_cycle
        assert 4.5 <= eff <= 6.6

    def test_fps_band(self, plan_1_0):
        assert 1.0 <= plan_1_0.performance.fps <= 2.5

    def test_unknown_kind_rejected(self):
        model = GAP8PerformanceModel()
        with pytest.raises(ReproError):
            model.layer_cycles("fft", 1000)

    def test_zero_macs_free(self):
        assert GAP8PerformanceModel().layer_cycles("norm", 0) == 0.0

    def test_config_validation(self):
        with pytest.raises(ReproError):
            GAP8Config(cluster_freq_hz=0.0)


class TestMemory:
    def test_weights_in_hyperram(self, plan_1_0):
        assert plan_1_0.memory.weights_location == "HyperRAM"
        assert plan_1_0.memory.weight_bytes == plan_1_0.cost.total_params

    def test_tiny_weights_fit_l2(self):
        report = trace_detector(SSDDetector(tiny_spec(0.5)))
        mem = analyze_memory(report)
        assert mem.weights_location == "L2"

    def test_tiling_splits_large_layers(self, plan_1_0):
        assert plan_1_0.memory.max_tiles > 1  # QVGA stem activations > 250 kB

    def test_untileable_layer_rejected(self):
        layer = LayerCost(
            name="huge",
            kind="conv",
            macs=1,
            params=1,
            in_shape=(512, 1, 4096),
            out_shape=(512, 1, 4096),
        )
        report = CostReport(name="x", input_hw=(1, 4096), layers=[layer])
        with pytest.raises(DeploymentError):
            analyze_memory(report)


class TestPower:
    def test_paper_calibration(self):
        # 27 g hover should land on the paper's 7.32 W measurement.
        assert hover_motor_power_w(0.027) == pytest.approx(7.32, rel=0.02)

    def test_breakdown_shares(self):
        bd = platform_power_breakdown(0.134)
        pct = bd.percentages()
        assert pct["Motors"] == pytest.approx(91.3, abs=1.0)
        assert bd.total_w == pytest.approx(8.02, abs=0.15)
        assert sum(pct.values()) == pytest.approx(100.0)

    def test_ai_deck_power_band(self, plan_1_0):
        p = AIDeckPowerModel().power_w(plan_1_0.performance)
        assert 0.10 <= p <= 0.16  # paper: 134.5-143.5 mW

    def test_energy_per_frame(self, plan_1_0):
        e = AIDeckPowerModel().energy_per_frame_j(plan_1_0.performance)
        assert e == pytest.approx(
            AIDeckPowerModel().power_w(plan_1_0.performance)
            / plan_1_0.performance.fps,
            rel=1e-6,
        )

    def test_validation(self):
        with pytest.raises(ReproError):
            hover_motor_power_w(-1.0)
        with pytest.raises(ReproError):
            hover_motor_power_w(0.027, figure_of_merit=2.0)


class TestSTM32:
    def test_all_policies_fit_easily(self):
        load = STM32LoadModel()
        for name in POLICY_NAMES:
            assert load.policy_load(name) < 0.001  # << 0.1% of the MCU
            assert load.headroom(name) > 0.9

    def test_flight_stack_dominates(self):
        load = STM32LoadModel()
        assert load.flight_stack_load() > load.policy_load("pseudo-random") * 100

    def test_unknown_policy(self):
        with pytest.raises(ReproError):
            STM32LoadModel().policy_load("astar")
