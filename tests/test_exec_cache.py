"""Result caching across campaigns: hits, misses and invalidation.

Covers the PR's cache contract end-to-end: an identical rerun of
``python -m repro.sim run`` is 100% cache hits with byte-identical
result JSON, while any change to the campaign config, the seed, or the
mission code version busts the affected entries.
"""

import os

import pytest

import repro.sim.runner as runner
from repro.exec import ResultCache
from repro.sim import Campaign, get_scenario, run_campaign
from repro.sim.__main__ import main
from repro.sim.runner import mission_job


def tiny_campaign(flight_time_s=5.0, seed=3, n_runs=2):
    return Campaign(
        name="cache-test",
        scenarios=(get_scenario("paper-room"),),
        flight_time_s=flight_time_s,
        n_runs=n_runs,
        seed=seed,
    )


class TestCampaignCaching:
    def test_second_run_is_all_hits_and_identical(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        first = run_campaign(tiny_campaign(), cache=cache)
        assert first.execution.executed == 2
        second = run_campaign(tiny_campaign(), cache=cache)
        assert second.execution.executed == 0
        assert second.execution.cached == 2
        assert second.to_json() == first.to_json()

    def test_no_cache_path_is_bit_identical_to_cached(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        fresh = run_campaign(tiny_campaign())
        warm = run_campaign(tiny_campaign(), cache=cache)
        hit = run_campaign(tiny_campaign(), cache=cache)
        assert fresh.to_json() == warm.to_json() == hit.to_json()

    def test_config_change_busts_the_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_campaign(tiny_campaign(flight_time_s=5.0), cache=cache)
        changed = run_campaign(tiny_campaign(flight_time_s=6.0), cache=cache)
        assert changed.execution.executed == 2

    def test_seed_change_busts_the_cache(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        run_campaign(tiny_campaign(seed=3), cache=cache)
        changed = run_campaign(tiny_campaign(seed=4), cache=cache)
        assert changed.execution.executed == 2

    def test_code_version_bump_busts_the_cache(self, tmp_path, monkeypatch):
        cache = ResultCache(str(tmp_path))
        run_campaign(tiny_campaign(), cache=cache)
        monkeypatch.setattr(
            runner, "MISSION_JOB_VERSION", "repro.sim.campaign-result/v99"
        )
        bumped = run_campaign(tiny_campaign(), cache=cache)
        assert bumped.execution.executed == 2

    def test_growing_a_campaign_reuses_the_shared_prefix(self, tmp_path):
        # n_runs=2 -> n_runs=3: the two flown missions have identical
        # job hashes (same spawn keys), only the new run executes.
        cache = ResultCache(str(tmp_path))
        run_campaign(tiny_campaign(n_runs=2), cache=cache)
        grown = run_campaign(tiny_campaign(n_runs=3), cache=cache)
        assert grown.execution.executed == 1
        assert grown.execution.cached == 2

    def test_scenario_description_is_cosmetic(self):
        # Rewording a preset's description must not re-key its missions.
        spec = tiny_campaign().missions()[0]
        import dataclasses

        reworded = dataclasses.replace(
            spec,
            scenario=dataclasses.replace(spec.scenario, description="new words"),
        )
        assert mission_job(spec).content_hash() == mission_job(reworded).content_hash()


class TestCliCaching:
    ARGS = [
        "run",
        "--scenario", "paper-room",
        "--runs", "2",
        "--flight-time", "5",
        "--seed", "3",
        "--quiet",
    ]

    def run_cli(self, tmp_path, out_name, extra=()):
        argv = self.ARGS + [
            "--cache-dir", str(tmp_path / "cache"),
            "--out", str(tmp_path / out_name),
            *extra,
        ]
        assert main(argv) == 0

    def read_result(self, tmp_path, out_name):
        [name] = os.listdir(tmp_path / out_name)
        with open(tmp_path / out_name / name, "rb") as fh:
            return fh.read()

    def test_rerun_is_100_percent_hits_with_identical_json(self, tmp_path, capsys):
        self.run_cli(tmp_path, "out1")
        first_out = capsys.readouterr().out
        assert "2 executed" in first_out
        self.run_cli(tmp_path, "out2")
        second_out = capsys.readouterr().out
        assert "cache: 2/2 hits, 0 executed" in second_out
        assert "all missions loaded from cache" in second_out
        assert self.read_result(tmp_path, "out1") == self.read_result(tmp_path, "out2")

    def test_no_cache_flag_reexecutes(self, tmp_path, capsys):
        self.run_cli(tmp_path, "out1")
        capsys.readouterr()
        self.run_cli(tmp_path, "out2", extra=["--no-cache"])
        out = capsys.readouterr().out
        assert "cache:" not in out
        assert self.read_result(tmp_path, "out1") == self.read_result(tmp_path, "out2")

    def test_cache_stats_and_clear(self, tmp_path, capsys):
        self.run_cli(tmp_path, "out1")
        capsys.readouterr()
        cache_dir = str(tmp_path / "cache")
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "2 results" in out
        assert main(["cache", "clear", "--cache-dir", cache_dir]) == 0
        out = capsys.readouterr().out
        assert "removed 2 cached results" in out
        assert main(["cache", "stats", "--cache-dir", cache_dir]) == 0
        assert "0 results" in capsys.readouterr().out


class TestPayloadRoundTrip:
    def test_mission_job_payload_rebuilds_the_spec(self):
        spec = tiny_campaign().missions()[1]
        job = mission_job(spec)
        assert job.seed_entropy == spec.seed_entropy
        assert job.spawn_key == spec.spawn_key
        assert "seed_entropy" not in job.kwargs["spec"]
        record = runner.run_mission_payload(
            job.kwargs["spec"], job.seed_sequence()
        )
        assert record == runner.execute_mission(spec).to_dict()

    def test_executed_and_cached_records_compare_equal(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        first = run_campaign(tiny_campaign(), cache=cache)
        second = run_campaign(tiny_campaign(), cache=cache)
        assert first.records == second.records
