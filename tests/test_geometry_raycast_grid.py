"""Grid-accelerated ray casting: brute-force equivalence + golden values.

Two safety nets around the vectorized simulation core:

- property/randomized tests that the uniform-grid caster returns results
  *bit-identical* to the brute-force reference on segment soups, grazing
  rays and the batched entry points;
- golden-value tests pinning ``cast``/``cast_hit``/``line_of_sight``
  outputs captured from the pre-refactor scalar implementation (float
  hex, so equality is exact).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry.raycast import GRID_SEGMENT_THRESHOLD, RayCaster
from repro.geometry.segments import Segment
from repro.geometry.shapes import AABB
from repro.geometry.vec import Vec2
from repro.sim import get_scenario


def random_soup(rng, n, span=8.0):
    segs = []
    while len(segs) < n:
        a = Vec2(rng.uniform(-span, span), rng.uniform(-span, span))
        b = Vec2(rng.uniform(-span, span), rng.uniform(-span, span))
        if a.distance_to(b) > 1e-9:
            segs.append(Segment(a, b))
    return segs


def casters_for(segs):
    """The same segment set under brute-force and grid execution."""
    return (
        RayCaster(segs, accel="none"),
        RayCaster(segs, accel="grid"),
    )


class TestGridMatchesBruteForce:
    def test_randomized_soup_cast_hit_bit_identical(self):
        rng = np.random.default_rng(1234)
        for n in (3, 17, 60):
            brute, grid = casters_for(random_soup(rng, n))
            for _ in range(150):
                origin = Vec2(rng.uniform(-9, 9), rng.uniform(-9, 9))
                heading = rng.uniform(-math.pi, math.pi)
                a = brute.cast_hit(origin, heading)
                b = grid.cast_hit(origin, heading)
                assert a == b, (n, origin, heading)

    def test_randomized_soup_bounded_cast(self):
        rng = np.random.default_rng(99)
        brute, grid = casters_for(random_soup(rng, 40))
        for _ in range(150):
            origin = Vec2(rng.uniform(-9, 9), rng.uniform(-9, 9))
            heading = rng.uniform(-math.pi, math.pi)
            max_range = rng.uniform(0.1, 12.0)
            assert brute.cast(origin, heading, max_range) == grid.cast(
                origin, heading, max_range
            )

    def test_cast_many_matches_per_ray_cast(self):
        rng = np.random.default_rng(7)
        for accel in ("none", "grid"):
            caster = RayCaster(random_soup(rng, 25), accel=accel)
            origin = Vec2(0.5, -0.25)
            headings = [rng.uniform(-math.pi, math.pi) for _ in range(11)]
            batch = caster.cast_many(origin, headings, max_range=6.0)
            singles = [caster.cast(origin, h, max_range=6.0) for h in headings]
            assert batch.tolist() == singles

    def test_line_of_sight_many_matches_scalar(self):
        rng = np.random.default_rng(21)
        for accel in ("none", "grid"):
            caster = RayCaster(random_soup(rng, 30), accel=accel)
            origin = Vec2(0.0, 0.0)
            targets = [
                Vec2(rng.uniform(-8, 8), rng.uniform(-8, 8)) for _ in range(20)
            ]
            slacks = [rng.uniform(0.0, 0.3) for _ in range(20)]
            batch = caster.line_of_sight_many(origin, targets, slack=slacks)
            singles = [
                caster.line_of_sight(origin, t, slack=s)
                for t, s in zip(targets, slacks)
            ]
            assert batch.tolist() == singles

    def test_los_many_and_brute_agree_across_accel(self):
        rng = np.random.default_rng(3)
        segs = random_soup(rng, 45)
        brute, grid = casters_for(segs)
        origin = Vec2(1.0, 1.0)
        targets = [Vec2(rng.uniform(-8, 8), rng.uniform(-8, 8)) for _ in range(30)]
        assert (
            brute.line_of_sight_many(origin, targets).tolist()
            == grid.line_of_sight_many(origin, targets).tolist()
        )

    def test_endpoint_grazing_rays(self):
        # Rays aimed exactly at segment endpoints and along shared
        # vertices of a polyline must agree between the two paths.
        segs = [
            Segment(Vec2(2.0, -1.0), Vec2(2.0, 1.0)),
            Segment(Vec2(2.0, 1.0), Vec2(4.0, 1.0)),  # shares (2, 1)
            Segment(Vec2(4.0, 1.0), Vec2(4.0, -1.0)),  # shares (4, 1)
        ]
        brute, grid = casters_for(segs)
        origin = Vec2(0.0, 0.0)
        targets = [Vec2(2.0, 1.0), Vec2(2.0, -1.0), Vec2(4.0, 1.0), Vec2(3.0, 1.0)]
        for t in targets:
            heading = (t - origin).heading()
            assert brute.cast_hit(origin, heading) == grid.cast_hit(origin, heading)
        # Ray collinear with a horizontal segment.
        collinear = RayCaster([Segment(Vec2(1.0, 0.0), Vec2(3.0, 0.0))], accel="grid")
        ref = RayCaster([Segment(Vec2(1.0, 0.0), Vec2(3.0, 0.0))], accel="none")
        assert collinear.cast_hit(origin, 0.0) == ref.cast_hit(origin, 0.0)

    def test_axis_parallel_rays_from_outside(self):
        segs = AABB(1.0, 1.0, 3.0, 2.0).boundary_segments()
        brute, grid = casters_for(segs)
        cases = [
            (Vec2(0.0, 1.5), 0.0),  # enters through the left edge
            (Vec2(5.0, 1.5), math.pi),
            (Vec2(2.0, -3.0), math.pi / 2),
            (Vec2(2.0, 5.0), -math.pi / 2),
            (Vec2(0.0, 5.0), 0.0),  # misses entirely
            (Vec2(-4.0, -4.0), math.pi / 4),
        ]
        for origin, heading in cases:
            assert brute.cast_hit(origin, heading) == grid.cast_hit(origin, heading)

    @settings(max_examples=120, deadline=None)
    @given(
        ox=st.floats(-6, 6),
        oy=st.floats(-6, 6),
        heading=st.floats(-math.pi, math.pi),
    )
    def test_property_soup_agreement(self, ox, oy, heading):
        rng = np.random.default_rng(5150)
        segs = random_soup(rng, 24, span=5.0)
        brute, grid = casters_for(segs)
        origin = Vec2(ox, oy)
        assert brute.cast_hit(origin, heading) == grid.cast_hit(origin, heading)

    def test_auto_threshold_selects_grid(self):
        rng = np.random.default_rng(2)
        small = RayCaster(random_soup(rng, GRID_SEGMENT_THRESHOLD - 1))
        large = RayCaster(random_soup(rng, GRID_SEGMENT_THRESHOLD))
        assert small.accel == "none"
        assert large.accel == "grid"


class TestRayCasterApi:
    def test_segments_not_copied_per_access(self):
        segs = AABB(0.0, 0.0, 2.0, 2.0).boundary_segments()
        caster = RayCaster(segs)
        assert caster.segments is caster.segments
        assert list(caster.segments) == segs

    def test_cast_many_empty(self):
        caster = RayCaster(AABB(0.0, 0.0, 2.0, 2.0).boundary_segments())
        assert caster.cast_many(Vec2(1.0, 1.0), []).shape == (0,)
        assert caster.line_of_sight_many(Vec2(1.0, 1.0), []).shape == (0,)

    def test_line_of_sight_many_coincident_target(self):
        caster = RayCaster(AABB(0.0, 0.0, 2.0, 2.0).boundary_segments())
        p = Vec2(1.0, 1.0)
        assert caster.line_of_sight_many(p, [p]).tolist() == [True]


# Golden values captured from the pre-refactor scalar implementation
# (commit 3616cb0), as (origin, heading, expected) with float-hex
# coordinates so comparisons are exact.

_GOLDEN_PAPER_ROOM_CAST = [
    (("0x1.3ad9c3e0d9dfep+1", "0x1.374fc0930070ep+2"), "-0x1.02b3bce4e65ecp+0", "0x1.0000000000000p+2"),
    (("0x1.a7db5516a5470p+1", "0x1.4937f08ae7d1fp+0"), "0x1.69e72822cc6ecp+1", "0x1.bdadd40111b75p+1"),
    (("0x1.daa67fbc9f563p+0", "0x1.3acfd30606949p+2"), "-0x1.94cc7141a5200p-1", "0x1.0000000000000p+2"),
    (("0x1.828a59207c052p+2", "0x1.1a086a0a19984p+1"), "0x1.3ed8bb75fb620p+0", "0x1.70b630c3306bcp+0"),
    (("0x1.5655119425d92p+2", "0x1.169d4a23aacf5p+2"), "0x1.61b20dfcbcebap+1", "0x1.8d570e74c2d86p+1"),
    (("0x1.318527b1d89fcp+2", "0x1.2969456d0ba4fp+2"), "-0x1.6f4b7155931f9p+0", "0x1.0000000000000p+2"),
    (("0x1.794e71156d817p+2", "0x1.ebfb7aae99151p+1"), "-0x1.9af1163689340p-2", "0x1.5043d4b2c7cf9p-1"),
    (("0x1.0a337b7cb0759p+2", "0x1.bc29262d7b8c2p+1"), "-0x1.0f69475b03582p+1", "0x1.0000000000000p+2"),
    (("0x1.51026bc2829c2p+2", "0x1.5e4141fe3cbb0p-2"), "-0x1.6f888d63b3ce8p+1", "0x1.4800967050c3cp+0"),
    (("0x1.3d50a5b32c2aep+2", "0x1.03a70707c744fp+2"), "-0x1.9ac55c2c6a844p-1", "0x1.1bf591da32f4ep+1"),
    (("0x1.453046c277ee7p+2", "0x1.8b235effedb28p+1"), "-0x1.ec0784c46b972p+0", "0x1.a4d2f6d7dcafep+1"),
    (("0x1.379d023a68126p+1", "0x1.136c1176f952bp+2"), "-0x1.4cad021dd9214p+0", "0x1.0000000000000p+2"),
]

_GOLDEN_DENSE_DEPOT_CAST_HIT = [
    (("0x1.50edf237563c8p+1", "0x1.c63dcded66c03p+1"), "0x1.8c06a008542dep+1", "0x1.514feb9fd861ap+1"),
    (("0x1.ad35b4b993c7cp+2", "0x1.f81eef2253dafp+0"), "-0x1.839304210c67bp+1", "0x1.40bd214856084p+2"),
    (("0x1.951e77c6d4272p+2", "0x1.fabdc00d0bb21p+1"), "0x1.37d99d0328f60p-2", "0x1.ec6bbed575b7bp+1"),
    (("0x1.7e6d6bc08f588p-1", "0x1.9214410bf75b1p+1"), "-0x1.0eabe6dabd619p+1", "0x1.718eb455eb344p+0"),
    (("0x1.877b6447a3bf5p+1", "0x1.cd8b54299a09fp+2"), "-0x1.6da0faf7913fep+0", "0x1.d246370497ee4p+2"),
    (("0x1.3404f798a2e0ap+2", "0x1.94346cb8c60e0p+2"), "0x1.43870cb62148cp+0", "0x1.c4550ba8e44a4p+0"),
    (("0x1.1031a06381343p+2", "0x1.0e7ac26c0a5dep+0"), "0x1.42d71603acf8cp+1", "0x1.4e4c5589518cbp+2"),
    (("0x1.7751c4c7ae342p+1", "0x1.9294fd9fb2878p+2"), "0x1.5229576bcbfa8p-1", "0x1.64b5033d3b889p+1"),
    (("0x1.8a8d219e69cc0p+1", "0x1.91a78b621d9cbp+2"), "0x1.e157b1405eec8p-1", "0x1.1141f0bd1e3f3p+1"),
    (("0x1.22596174841edp+3", "0x1.b1467f169e5cap+2"), "0x1.69f20909f5844p-1", "0x1.37f71ff85ce48p+0"),
    (("0x1.8c2281233bc5ap-1", "0x1.6284070ee0fa0p-1"), "-0x1.2c13483bdc3d5p+0", "0x1.80ad27176e84bp-1"),
    (("0x1.1bec86d9017dfp+3", "0x1.676091ef9e277p+2"), "0x1.966ba3455d574p+0", "0x1.3149ddfe4fc26p+1"),
    (("0x1.ab5ad99d78f79p+2", "0x1.3e96d52228674p+1"), "0x1.d91760754d30cp+0", "0x1.6eb4b5e594e7ep+2"),
    (("0x1.3bfe92770e0abp+2", "0x1.9a5d808444506p+2"), "0x1.6d55361ccb8d4p+0", "0x1.9ac616ec57bf3p+0"),
    (("0x1.81c624a0d3615p+1", "0x1.9544faff793ebp+2"), "-0x1.cc41a9bfa42d1p+0", "0x1.9ff29fab812b2p+2"),
]

_GOLDEN_APARTMENT_LOS = [
    (("0x1.8218f9b0f6dafp+1", "0x1.da31a684df5e5p+1"), ("0x1.e4b8fb01fb814p-1", "0x1.589145b2a26a4p+2"), True),
    (("0x1.e126e2a57d0b6p+2", "0x1.4871581cdf4f5p+1"), ("0x1.33c27591135d7p+2", "0x1.b7764b44843c4p+1"), False),
    (("0x1.56065435acceep+0", "0x1.4ccedd384f99cp+2"), ("0x1.8fadc7f974f77p+0", "0x1.b0438d0a212f0p-1"), False),
    (("0x1.896e99e56a4d8p+2", "0x1.d03b6af4e9db5p+1"), ("0x1.d532b46e8320ap+2", "0x1.b373e4067734ep+1"), True),
    (("0x1.27e66413a4c20p+3", "0x1.d7e8bbba57286p+2"), ("0x1.eef802c97a2a4p-1", "0x1.bac9ba60fc692p+2"), False),
    (("0x1.63bfd3d6acce5p+2", "0x1.4f8e5b72c9889p+2"), ("0x1.1ce3829283b10p+3", "0x1.c190587b4fc3bp+2"), True),
    (("0x1.2b8dc1e286bc1p+2", "0x1.cdfdc6ca43784p+2"), ("0x1.0836967135546p+2", "0x1.2c3fc8ae644a6p+2"), True),
    (("0x1.49dac54128a12p+2", "0x1.afffa3fc49f47p+2"), ("0x1.137a03ce35c4fp+3", "0x1.b52999e66f99cp+2"), True),
    (("0x1.c63f477a38ea8p+1", "0x1.ffb9c1c2055eep+1"), ("0x1.274bae0fd8103p+2", "0x1.9c9020090f114p+1"), False),
    (("0x1.bdf9851e2cfcbp+2", "0x1.8196cb26f5cf7p+2"), ("0x1.4282e44fc948ep-1", "0x1.88a2ef199ab31p+2"), False),
    (("0x1.0e1b6014f4b24p+3", "0x1.019cb3623768bp+2"), ("0x1.063d306f1c920p+0", "0x1.573ee8210a02cp+2"), False),
    (("0x1.8b5e381d2e514p+0", "0x1.f0f801b58ec91p+1"), ("0x1.3f8c3f2564436p+2", "0x1.249cd633defaep+2"), False),
    (("0x1.800b36e2b2bd3p+2", "0x1.9770dc18aeb2ap+2"), ("0x1.30417ae7d90bep+3", "0x1.faba8fb192763p+1"), True),
    (("0x1.dafa426148ee2p+2", "0x1.2748060f62eebp+1"), ("0x1.43fac18a98f6ep+1", "0x1.c98199152e3adp+1"), False),
    (("0x1.39d9c52d568fap+2", "0x1.f6fd09ab0ceb8p+1"), ("0x1.0b8e326400644p-1", "0x1.68448e73004c7p+1"), False),
]


def _vec(pair):
    return Vec2(float.fromhex(pair[0]), float.fromhex(pair[1]))


class TestGoldenValues:
    @pytest.mark.parametrize("accel", ["none", "grid"])
    def test_paper_room_cast(self, accel):
        room = get_scenario("paper-room").build_room()
        caster = RayCaster(room.raycaster.segments, accel=accel)
        for origin, heading, expected in _GOLDEN_PAPER_ROOM_CAST:
            got = caster.cast(_vec(origin), float.fromhex(heading), max_range=4.0)
            assert got == float.fromhex(expected)

    @pytest.mark.parametrize("accel", ["none", "grid"])
    def test_dense_depot_cast_hit(self, accel):
        room = get_scenario("dense-depot").build_room()
        caster = RayCaster(room.raycaster.segments, accel=accel)
        for origin, heading, expected in _GOLDEN_DENSE_DEPOT_CAST_HIT:
            got = caster.cast_hit(_vec(origin), float.fromhex(heading))
            want = None if expected is None else float.fromhex(expected)
            assert got == want

    @pytest.mark.parametrize("accel", ["none", "grid"])
    def test_apartment_line_of_sight(self, accel):
        room = get_scenario("apartment").build_room()
        caster = RayCaster(room.raycaster.segments, accel=accel)
        for a, b, expected in _GOLDEN_APARTMENT_LOS:
            assert caster.line_of_sight(_vec(a), _vec(b), slack=0.1) is expected
