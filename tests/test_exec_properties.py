"""Property-based tests for JobSpec canonicalization and hashing.

No hypothesis in the container, so the properties are driven by a
seeded numpy generator: a few hundred random nested plain-data payloads
per property, fully reproducible. The invariants under test are the
load-bearing ones for the cache and the distributed queue:

- ``to_dict`` / ``from_dict`` round-trips preserve the content hash
  (the broker stores specs as canonical JSON and rebuilds them in
  whichever worker leases them);
- the hash is invariant under dict key order, tuple-vs-list spelling
  and numpy-vs-Python scalar spelling;
- ``label`` and ``extra`` are provably cosmetic: any relabeling leaves
  hash and identity dict untouched;
- anything without a canonical JSON form is rejected at construction.
"""

import json

import numpy as np
import pytest

from repro.errors import ExecError
from repro.exec import (
    Broker,
    JobSpec,
    canonical_json,
    canonical_value,
    json_roundtrip,
)

N_CASES = 200

_SCALAR_MAKERS = (
    lambda rng: None,
    lambda rng: bool(rng.integers(0, 2)),
    lambda rng: int(rng.integers(-(10**12), 10**12)),
    lambda rng: float(rng.standard_normal() * 10.0 ** rng.integers(-8, 9)),
    lambda rng: float(rng.integers(-5, 6)),  # integral floats survive too
    lambda rng: np.float64(rng.standard_normal()),
    lambda rng: np.int32(rng.integers(-(2**31), 2**31)),
    lambda rng: np.bool_(rng.integers(0, 2)),
    lambda rng: "".join(
        chr(int(c))
        for c in rng.integers(32, 0x2FF, size=int(rng.integers(0, 12)))
    ),
)


def random_value(rng, depth=3):
    """One random canonicalizable value, nesting up to ``depth`` levels."""
    if depth <= 0 or rng.random() < 0.5:
        return _SCALAR_MAKERS[rng.integers(0, len(_SCALAR_MAKERS))](rng)
    roll = rng.random()
    n = int(rng.integers(0, 5))
    if roll < 0.4:
        return [random_value(rng, depth - 1) for _ in range(n)]
    if roll < 0.6:
        return tuple(random_value(rng, depth - 1) for _ in range(n))
    return {
        f"k{i}_{rng.integers(0, 1000)}": random_value(rng, depth - 1)
        for i in range(n)
    }


def random_kwargs(rng, depth=3):
    return {
        f"arg{i}": random_value(rng, depth) for i in range(int(rng.integers(0, 6)))
    }


def random_spec(rng, kwargs=None):
    seeded = bool(rng.integers(0, 2))
    return JobSpec(
        fn="repro.exec.demo:scaled_sum",
        kwargs=random_kwargs(rng) if kwargs is None else kwargs,
        seed_entropy=int(rng.integers(0, 2**63)) if seeded else None,
        spawn_key=tuple(
            int(k) for k in rng.integers(0, 100, size=int(rng.integers(0, 3)))
        )
        if seeded
        else (),
        version=f"v{int(rng.integers(0, 10))}",
    )


def shuffled_copy(value, rng):
    """Deep copy with every dict's key insertion order randomized."""
    if isinstance(value, dict):
        keys = list(value)
        rng.shuffle(keys)
        return {k: shuffled_copy(value[k], rng) for k in keys}
    if isinstance(value, list):
        return [shuffled_copy(v, rng) for v in value]
    return value


class TestRoundTrip:
    def test_to_dict_from_dict_preserves_hash_and_identity(self):
        rng = np.random.default_rng(20230811)
        for _ in range(N_CASES):
            spec = random_spec(rng)
            rebuilt = JobSpec.from_dict(spec.to_dict(), label="renamed")
            assert rebuilt.content_hash() == spec.content_hash()
            assert rebuilt.to_dict() == spec.to_dict()

    def test_round_trip_through_json_text(self):
        """The broker's wire format: canonical JSON text, then rebuild."""
        rng = np.random.default_rng(774411)
        for _ in range(N_CASES):
            spec = random_spec(rng)
            wire = canonical_json(spec.to_dict())
            rebuilt = JobSpec.from_dict(json.loads(wire))
            assert rebuilt.content_hash() == spec.content_hash()
            assert canonical_json(rebuilt.to_dict()) == wire

    def test_kwargs_survive_json_exactly(self):
        rng = np.random.default_rng(99)
        for _ in range(N_CASES):
            spec = random_spec(rng)
            assert json_roundtrip(spec.kwargs) == spec.kwargs

    def test_round_trip_through_a_real_broker(self, tmp_path):
        """Lease returns a spec whose identity equals the submitted one."""
        rng = np.random.default_rng(31337)
        specs = [random_spec(rng) for _ in range(25)]
        with Broker(str(tmp_path / "queue.db")) as broker:
            broker.submit(specs)
            seen = {}
            while True:
                lease = broker.lease("prop")
                if lease is None:
                    break
                seen[lease.content_hash] = lease.job
                broker.complete("prop", lease.content_hash, None)
        # duplicates collapse: every distinct hash came back exactly once
        assert set(seen) == {s.content_hash() for s in specs}
        for spec in specs:
            rebuilt = seen[spec.content_hash()]
            assert rebuilt.to_dict() == spec.to_dict()
            assert rebuilt.content_hash() == spec.content_hash()


class TestHashInvariance:
    def test_hash_invariant_under_dict_key_order(self):
        rng = np.random.default_rng(555)
        for _ in range(N_CASES):
            kwargs = random_kwargs(rng)
            spec = JobSpec(fn="m:f", kwargs=kwargs, version="v")
            shuffled = JobSpec(
                fn="m:f", kwargs=shuffled_copy(kwargs, rng), version="v"
            )
            assert shuffled.content_hash() == spec.content_hash()
            assert canonical_json(shuffled.to_dict()) == canonical_json(spec.to_dict())

    def test_hash_invariant_under_tuple_vs_list_spelling(self):
        rng = np.random.default_rng(556)

        def listify(value):
            if isinstance(value, (list, tuple)):
                return [listify(v) for v in value]
            if isinstance(value, dict):
                return {k: listify(v) for k, v in value.items()}
            return value

        for _ in range(N_CASES):
            kwargs = random_kwargs(rng)
            a = JobSpec(fn="m:f", kwargs=kwargs)
            b = JobSpec(fn="m:f", kwargs=listify(kwargs))
            assert a.content_hash() == b.content_hash()

    def test_hash_invariant_under_numpy_scalar_spelling(self):
        cases = [
            ({"x": np.float64(0.1)}, {"x": 0.1}),
            ({"x": np.int64(7)}, {"x": 7}),
            ({"x": np.bool_(True)}, {"x": True}),
            ({"x": [np.float32(1.5), np.int16(2)]}, {"x": [1.5, 2]}),
        ]
        for numpy_kwargs, plain_kwargs in cases:
            a = JobSpec(fn="m:f", kwargs=numpy_kwargs)
            b = JobSpec(fn="m:f", kwargs=plain_kwargs)
            assert a.content_hash() == b.content_hash()

    def test_distinct_payloads_get_distinct_hashes(self):
        """Sanity bound: no accidental collisions over the random corpus."""
        rng = np.random.default_rng(557)
        seen = {}
        for _ in range(N_CASES):
            spec = random_spec(rng)
            blob = canonical_json(spec.to_dict())
            previous = seen.setdefault(spec.content_hash(), blob)
            assert previous == blob

    def test_every_hashed_field_matters(self):
        base = dict(fn="m:f", kwargs={"x": 1}, seed_entropy=7, spawn_key=(1,),
                    version="v1")
        spec = JobSpec(**base)
        perturbed = [
            JobSpec(**{**base, "fn": "m:g"}),
            JobSpec(**{**base, "kwargs": {"x": 2}}),
            JobSpec(**{**base, "seed_entropy": 8}),
            JobSpec(**{**base, "spawn_key": (2,)}),
            JobSpec(**{**base, "version": "v2"}),
        ]
        hashes = {p.content_hash() for p in perturbed}
        assert spec.content_hash() not in hashes
        assert len(hashes) == len(perturbed)


class TestCosmeticFields:
    def test_label_and_extra_are_provably_cosmetic(self):
        rng = np.random.default_rng(888)
        for _ in range(N_CASES):
            kwargs = random_kwargs(rng)
            plain = JobSpec(fn="m:f", kwargs=kwargs, version="v")
            decorated = JobSpec(
                fn="m:f",
                kwargs=kwargs,
                version="v",
                label="".join(chr(int(c)) for c in rng.integers(33, 127, size=8)),
                extra={"side_channel": random_value(rng, depth=2)},
            )
            assert decorated.content_hash() == plain.content_hash()
            assert decorated.to_dict() == plain.to_dict()
            assert "label" not in decorated.to_dict()
            assert "extra" not in decorated.to_dict()

    def test_extra_must_not_shadow_kwargs(self):
        with pytest.raises(ExecError, match="shadow"):
            JobSpec(fn="m:f", kwargs={"x": 1}, extra={"x": 2})


class TestRejection:
    @pytest.mark.parametrize(
        "bad",
        [
            {"x": object()},
            {"x": {1: "non-string key"}},
            {"x": {(1, 2): "tuple key"}},
            {"x": {"nested": [1, {"deep": set()}]}},
            {"x": np.arange(3)},  # arrays must travel encoded, not raw
            {"x": lambda: None},
            {"x": b"bytes"},
        ],
    )
    def test_non_plain_data_rejected_at_construction(self, bad):
        with pytest.raises(ExecError):
            JobSpec(fn="m:f", kwargs=bad)

    def test_canonical_value_output_vocabulary(self):
        """Whatever comes out is built from the 6 canonical types only."""
        rng = np.random.default_rng(4242)

        def check(value):
            if isinstance(value, (bool, int, float, str)) or value is None:
                return
            if isinstance(value, list):
                for v in value:
                    check(v)
                return
            if isinstance(value, dict):
                for k, v in value.items():
                    assert type(k) is str
                    check(v)
                return
            raise AssertionError(f"non-canonical type {type(value)!r} leaked")

        for _ in range(N_CASES):
            check(canonical_value(random_value(rng)))
