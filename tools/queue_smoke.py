"""Queue smoke: a sharded campaign surviving a SIGKILLed worker.

End-to-end proof of the distributed-queue contract, driving the real
CLIs as subprocesses:

1. a serial reference run (``python -m repro.sim run``);
2. the same campaign enqueued into a SQLite broker
   (``--broker --enqueue-only``);
3. three ``python -m repro.exec worker`` daemons drain it -- the first
   is stalled inside a job body by an injected 60 s delay fault and
   SIGKILLed mid-lease, the other two finish the queue (including the
   reclaimed job);
4. the collector (``python -m repro.sim run --broker``) must write a
   result file **byte-identical** to the serial reference;
5. the ``leases`` audit table must show exactly one completion per
   mission and at least one expiry reclaim, and
   ``python -m repro.exec status --json`` dumps the broker stats as a
   CI artifact.

Exits nonzero on the first violated assertion. Used by CI; run locally
with::

    PYTHONPATH=src python tools/queue_smoke.py --flight-time 10
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import time

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.exec import FAULT_PLAN_ENV, Broker  # noqa: E402


def cli_env(fault_plan=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env.pop(FAULT_PLAN_ENV, None)
    if fault_plan is not None:
        env[FAULT_PLAN_ENV] = fault_plan
    return env


def run_cli(cmd, workdir, expect_rc=0):
    proc = subprocess.run(
        cmd, cwd=workdir, env=cli_env(), capture_output=True, text=True,
        timeout=600,
    )
    if proc.returncode != expect_rc:
        raise SystemExit(
            f"queue smoke: {' '.join(cmd)} exited {proc.returncode} "
            f"(expected {expect_rc})\nstdout:\n{proc.stdout}\n"
            f"stderr:\n{proc.stderr}"
        )
    return proc


def sim_run(extra, workdir, expect_rc=0):
    return run_cli(
        [sys.executable, "-m", "repro.sim", "run", *extra], workdir, expect_rc
    )


def result_file(out_dir):
    names = [n for n in os.listdir(out_dir) if n.endswith(".json")]
    if len(names) != 1:
        raise SystemExit(f"queue smoke: expected 1 result in {out_dir}, got {names}")
    return os.path.join(out_dir, names[0])


def read_bytes(path):
    with open(path, "rb") as fh:
        return fh.read()


def check(condition, message):
    if not condition:
        raise SystemExit(f"queue smoke FAILED: {message}")
    print(f"  ok: {message}")


def wait_for(predicate, timeout_s, what):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.1)
    raise SystemExit(f"queue smoke FAILED: timed out waiting for {what}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--flight-time", type=float, default=10.0,
        help="simulated seconds per mission (2 missions per run)",
    )
    parser.add_argument(
        "--workdir", default="queue-smoke-work",
        help="scratch directory (wiped and recreated)",
    )
    args = parser.parse_args(argv)

    work = os.path.abspath(args.workdir)
    shutil.rmtree(work, ignore_errors=True)
    os.makedirs(work)
    db = os.path.join(work, "queue.db")

    base_flags = [
        "--runs", "2", "--flight-time", str(args.flight_time), "--quiet",
    ]

    print("[1/4] serial reference run")
    sim_run(base_flags + ["--out", "out-ref"], work)
    reference_path = result_file(os.path.join(work, "out-ref"))
    reference = read_bytes(reference_path)

    print("[2/4] enqueue the same campaign into the broker")
    sim_run(base_flags + ["--broker", db, "--enqueue-only"], work)
    with Broker(db) as broker:
        check(broker.counts().pending == 2, "both missions pending in the queue")

    print("[3/4] 3 workers drain it; the first is SIGKILLed mid-lease")
    worker_cmd = [
        sys.executable, "-m", "repro.exec", "worker",
        "--broker", db, "--poll", "0.05", "--no-cache",
    ]
    # the victim's first attempt stalls for 60 s inside the job body, so
    # it is guaranteed to die holding the lease; the reclaimed attempt
    # (attempt 1) runs fault-free in a helper
    stall = json.dumps(
        {"faults": [{"kind": "delay", "attempt": 0, "delay_s": 60.0}]}
    )
    victim_env = cli_env(fault_plan=stall)
    victim = subprocess.Popen(
        worker_cmd + ["--lease", "1", "--worker-id", "victim"],
        cwd=work, env=victim_env,
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    helpers = []
    try:
        with Broker(db) as broker:
            wait_for(
                lambda: broker.counts().leased >= 1, 60,
                "the victim to lease a mission",
            )
        victim.kill()
        victim.wait(timeout=30)
        check(victim.returncode != 0, "victim worker really was SIGKILLed")
        helpers = [
            subprocess.Popen(
                worker_cmd + ["--exit-when-drained", "--worker-id", f"helper{i}"],
                cwd=work, env=cli_env(),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
            )
            for i in range(2)
        ]
        print("[4/4] collect and compare")
        sim_run(
            base_flags + ["--broker", db, "--out", "out-queue", "--wait-timeout", "300"],
            work,
        )
        for helper in helpers:
            helper.wait(timeout=60)
    finally:
        for proc in [victim, *helpers]:
            if proc.poll() is None:
                proc.kill()

    queue_path = result_file(os.path.join(work, "out-queue"))
    check(
        os.path.basename(queue_path) == os.path.basename(reference_path),
        "broker-drained result file has the reference filename",
    )
    check(
        read_bytes(queue_path) == reference,
        "broker-drained result byte-identical to the serial reference",
    )

    stats_proc = run_cli(
        [sys.executable, "-m", "repro.exec", "status", "--broker", db, "--json"],
        work,
    )
    stats = json.loads(stats_proc.stdout)
    with open(os.path.join(work, "broker-stats.json"), "w", encoding="utf-8") as fh:
        fh.write(stats_proc.stdout)
    check(stats["jobs"]["done"] == 2, "both missions done in the broker")
    check(stats["jobs"]["failed"] == 0, "no mission marked failed")
    check(stats["reclaims"] >= 1, "the victim's lease really was reclaimed")
    check(
        stats["completions"] == 2,
        f"exactly one completion per mission ({stats['completions']} total)",
    )
    check(
        stats["leases"].get("expired", 0) >= 1,
        "leases audit records the victim's expiry",
    )
    # stats carries counts only; prove exactly-once per mission from the
    # append-only leases audit table itself
    with Broker(db) as broker:
        with broker._lock:
            rows = broker._conn.execute(
                "SELECT hash, COUNT(*) FROM leases WHERE outcome='completed' "
                "GROUP BY hash"
            ).fetchall()
    check(
        len(rows) == 2 and all(n == 1 for _, n in rows),
        "leases audit: every mission completed by exactly one lease",
    )

    print("queue smoke: all checks passed (broker stats in broker-stats.json)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
