"""Chaos smoke: the campaign CLI under an injected fault plan.

End-to-end proof of the fault-tolerance contract, driving the real
``python -m repro.sim`` CLI as a subprocess (the fault plan rides the
``$REPRO_FAULT_PLAN`` environment variable, so the command under test
is completely unmodified):

1. a fault-free serial reference run;
2. the same campaign under chaos -- a transient exception on one
   mission's first attempt, a hard worker crash (``os._exit``) on the
   other's, and corrupt cache writes for one of them -- with a pooled
   executor and ``--retries 3``: must complete and write a result file
   **byte-identical** to the reference;
3. a rerun against the chaos cache: the corrupt entry must be
   quarantined (not silently re-missed), the mission re-executed, and
   the result file byte-identical again;
4. a permanently-failing mission with ``--keep-going``: only that
   mission may be marked failed, the sibling must land normally;
5. ``cache evict --max-bytes``: the byte budget must be honored,
   oldest entries evicted first.

Exits nonzero on the first violated assertion. Used by CI; run locally
with::

    PYTHONPATH=src python tools/chaos_smoke.py --flight-time 10
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.exec import FAULT_PLAN_ENV, ResultCache  # noqa: E402
from repro.exec.faults import FaultPlan, FaultSpec  # noqa: E402
from repro.sim import Campaign, get_scenario  # noqa: E402
from repro.sim.runner import mission_job  # noqa: E402


def run_cli(args, workdir, fault_plan_path=None, expect_rc=0):
    """Run ``python -m repro.sim`` with an optional fault plan in the env."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env.pop(FAULT_PLAN_ENV, None)
    if fault_plan_path is not None:
        env[FAULT_PLAN_ENV] = fault_plan_path
    cmd = [sys.executable, "-m", "repro.sim"] + args
    proc = subprocess.run(
        cmd, cwd=workdir, env=env, capture_output=True, text=True, timeout=600
    )
    if proc.returncode != expect_rc:
        raise SystemExit(
            f"chaos smoke: {' '.join(cmd)} exited {proc.returncode} "
            f"(expected {expect_rc})\nstdout:\n{proc.stdout}\n"
            f"stderr:\n{proc.stderr}"
        )
    return proc


def result_file(out_dir):
    """The single campaign result JSON written into ``out_dir``."""
    names = [n for n in os.listdir(out_dir) if n.endswith(".json")]
    if len(names) != 1:
        raise SystemExit(f"chaos smoke: expected 1 result in {out_dir}, got {names}")
    return os.path.join(out_dir, names[0])


def read_bytes(path):
    with open(path, "rb") as fh:
        return fh.read()


def check(condition, message):
    if not condition:
        raise SystemExit(f"chaos smoke FAILED: {message}")
    print(f"  ok: {message}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--flight-time", type=float, default=10.0,
        help="simulated seconds per mission (2 missions per run)",
    )
    parser.add_argument(
        "--workdir", default="chaos-smoke-work",
        help="scratch directory (wiped and recreated)",
    )
    args = parser.parse_args(argv)

    work = os.path.abspath(args.workdir)
    shutil.rmtree(work, ignore_errors=True)
    os.makedirs(work)

    # The exact campaign the CLI builds for these flags, so the fault
    # plan can target individual missions by job content hash.
    campaign = Campaign(
        name="cli",
        scenarios=(get_scenario("paper-room"),),
        n_runs=2,
        flight_time_s=args.flight_time,
        seed=0,
    )
    hashes = [mission_job(spec).content_hash() for spec in campaign.missions()]
    check(len(hashes) == 2, f"campaign has 2 missions ({[h[:12] for h in hashes]})")

    base_flags = [
        "run", "--runs", "2", "--flight-time", str(args.flight_time),
        "--quiet",
    ]

    print("[1/5] fault-free serial reference run")
    run_cli(
        base_flags + ["--cache-dir", "cache-ref", "--out", "out-ref"], work
    )
    reference = read_bytes(result_file(os.path.join(work, "out-ref")))

    print("[2/5] chaos run: transient raise + worker crash + corrupt cache writes")
    chaos_plan = FaultPlan((
        FaultSpec(kind="raise", match=hashes[0][:12], attempt=0,
                  message="injected transient"),
        FaultSpec(kind="crash", match=hashes[1][:12], attempt=0),
        FaultSpec(kind="cache-corrupt", match=hashes[0][:12]),
    ))
    plan_path = os.path.join(work, "chaos-plan.json")
    with open(plan_path, "w", encoding="utf-8") as fh:
        fh.write(chaos_plan.to_json())
    proc = run_cli(
        base_flags + [
            "--workers", "2", "--retries", "3",
            "--cache-dir", "cache-chaos", "--out", "out-chaos",
        ],
        work,
        fault_plan_path=plan_path,
    )
    chaos = read_bytes(result_file(os.path.join(work, "out-chaos")))
    check(chaos == reference, "chaos result byte-identical to fault-free reference")
    check("retries" in proc.stdout, "CLI reported the retries it performed")

    print("[3/5] rerun against the chaos cache: quarantine + re-execute")
    run_cli(
        base_flags + ["--cache-dir", "cache-chaos", "--out", "out-rerun"], work
    )
    rerun = read_bytes(result_file(os.path.join(work, "out-rerun")))
    check(rerun == reference, "post-chaos rerun byte-identical to reference")
    stats = ResultCache(os.path.join(work, "cache-chaos")).stats()
    check(
        stats.quarantined == 1,
        f"corrupt entry quarantined, not silently re-missed (stats: {stats})",
    )
    check(stats.entries == 2, "both missions cached cleanly after the rerun")

    print("[4/5] permanent failure with --keep-going isolates one mission")
    permanent_plan = FaultPlan((
        FaultSpec(kind="raise", match=hashes[0][:12], attempt=None,
                  permanent=True, message="injected permanent"),
    ))
    perm_path = os.path.join(work, "permanent-plan.json")
    with open(perm_path, "w", encoding="utf-8") as fh:
        fh.write(permanent_plan.to_json())
    run_cli(
        base_flags + [
            "--retries", "2", "--keep-going",
            "--cache-dir", "cache-perm", "--out", "out-perm",
        ],
        work,
        fault_plan_path=perm_path,
        expect_rc=1,
    )
    with open(result_file(os.path.join(work, "out-perm")), encoding="utf-8") as fh:
        perm = json.load(fh)
    failed = perm.get("failures", [])
    check(len(failed) == 1, "exactly one mission marked failed")
    check(
        failed[0]["job_hash"] == hashes[0]
        and failed[0]["error_type"] == "ExecError"
        and failed[0]["attempts"] == 1,
        f"the failure names the faulted job, permanently ({failed[0]['message']})",
    )
    check(len(perm["records"]) == 1, "the sibling mission landed normally")

    print("[5/5] cache evict honors the byte budget, oldest first")
    cache = ResultCache(os.path.join(work, "cache-ref"))
    before = cache.stats()
    check(before.entries == 2, "reference cache holds both missions")
    budget = before.total_bytes // 2
    run_cli(
        ["cache", "evict", "--max-bytes", str(budget), "--cache-dir", "cache-ref"],
        work,
    )
    after = cache.stats()
    check(
        after.total_bytes <= budget,
        f"evicted down to the budget ({after.total_bytes} <= {budget} bytes)",
    )
    check(after.entries >= 1, "eviction removed only what the budget required")

    print("chaos smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
