"""Docs gate: markdown links must resolve, docstring examples must run.

Two checks, both fatal on failure:

1. Every relative link/image in the repo's markdown files (root + docs/)
   points at an existing file, and every ``file.md#anchor`` link targets
   a heading that actually exists (GitHub-style slugs).
2. The runnable examples embedded in the public ``repro.sim`` API
   docstrings pass under :mod:`doctest`.
3. Interactive (``>>>``) examples inside ``python`` code fences in the
   markdown docs pass under :mod:`doctest` too -- the docs cannot show
   a session the code no longer produces.

Run from the repository root (CI's docs job does exactly this):

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import doctest
import importlib
import re
import sys
from pathlib import Path
from typing import List

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Markdown files checked for dead links.
MARKDOWN_GLOBS = ("*.md", "docs/*.md")

#: Modules whose docstring examples are executed.
DOCTEST_MODULES = (
    "repro.exec.cache",
    "repro.exec.demo",
    "repro.exec.executor",
    "repro.exec.faults",
    "repro.exec.jobspec",
    "repro.exec.queue",
    "repro.exec.worker",
    "repro.lint.engine",
    "repro.obs.recorder",
    "repro.schemas",
    "repro.seeding",
    "repro.sim.campaign",
    "repro.sim.generators",
    "repro.sim.registry",
    "repro.sim.results",
    "repro.sim.runner",
    "repro.sim.scenario",
)

_LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def _slugify(heading: str) -> str:
    """GitHub-style anchor slug of a markdown heading."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def _anchors_of(path: Path) -> set:
    return {_slugify(h) for h in _HEADING_RE.findall(path.read_text(encoding="utf-8"))}


def check_markdown_links() -> List[str]:
    """Dead relative links/anchors across the repo's markdown files."""
    errors = []
    files = sorted(
        {f for pattern in MARKDOWN_GLOBS for f in REPO_ROOT.glob(pattern)}
    )
    for md in files:
        text = md.read_text(encoding="utf-8")
        rel = md.relative_to(REPO_ROOT)
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part, _, anchor = target.partition("#")
            if not path_part:  # same-file anchor
                if anchor and _slugify(anchor) not in _anchors_of(md):
                    errors.append(f"{rel}: broken anchor #{anchor}")
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                errors.append(f"{rel}: broken link {target}")
                continue
            if anchor and resolved.suffix == ".md":
                if _slugify(anchor) not in _anchors_of(resolved):
                    errors.append(f"{rel}: broken anchor {target}")
    return errors


def run_doctests() -> List[str]:
    """Docstring example failures across the public sim API."""
    errors = []
    for name in DOCTEST_MODULES:
        module = importlib.import_module(name)
        result = doctest.testmod(module, verbose=False)
        if result.failed:
            errors.append(f"{name}: {result.failed}/{result.attempted} examples failed")
        elif result.attempted == 0 and name != "repro.seeding":
            errors.append(f"{name}: expected at least one docstring example")
    return errors


_FENCE_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def run_markdown_doctests() -> List[str]:
    """Failures of ``>>>`` examples in markdown ``python`` fences."""
    errors = []
    parser = doctest.DocTestParser()
    runner = doctest.DocTestRunner(verbose=False)
    files = sorted(
        {f for pattern in MARKDOWN_GLOBS for f in REPO_ROOT.glob(pattern)}
    )
    for md in files:
        rel = str(md.relative_to(REPO_ROOT))
        text = md.read_text(encoding="utf-8")
        for idx, fence in enumerate(_FENCE_RE.findall(text)):
            if ">>>" not in fence:
                continue  # illustrative snippet, not a session transcript
            test = parser.get_doctest(
                fence, {}, f"{rel}[fence {idx}]", rel, 0
            )
            result = runner.run(test, clear_globs=True)
            if result.failed:
                errors.append(
                    f"{rel}: fence {idx}: "
                    f"{result.failed}/{result.attempted} examples failed"
                )
    return errors


def main() -> int:
    errors = check_markdown_links()
    errors += run_doctests()
    errors += run_markdown_doctests()
    if errors:
        for err in errors:
            print(f"FAIL {err}", file=sys.stderr)
        return 1
    print("docs OK: links resolve, docstring examples pass")
    return 0


if __name__ == "__main__":
    sys.exit(main())
